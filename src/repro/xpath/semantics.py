"""Denotational semantics of XPath patterns — the function ``f_P`` of §4.

``f_P : t × Dom(t) → 2^{Dom(t)}`` follows the paper's inductive definition
verbatim; node addresses are Dewey paths.  ``select(P, t)`` evaluates the
pattern from the root (the paper's "P selects u in t" is ``u ∈ f_P(t, ε)``)
and returns the selected addresses in document order.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from repro.trees.tree import Path, Tree
from repro.xpath.ast import Child, Desc, Disj, Filter, Pattern, Phi, Test, Wildcard


class _Evaluator:
    """Evaluator with per-(node, subexpression) memoization."""

    def __init__(self, tree: Tree) -> None:
        self.tree = tree
        self.subtrees: Dict[Path, Tree] = {
            path: node for path, node in tree.nodes()
        }
        self._phi_cache: Dict[Tuple[int, Path], FrozenSet[Path]] = {}
        self._pattern_cache: Dict[Tuple[int, Path], FrozenSet[Path]] = {}

    def children_of(self, path: Path) -> List[Path]:
        node = self.subtrees[path]
        return [path + (i,) for i in range(len(node.children))]

    def strict_descendants(self, path: Path) -> List[Path]:
        node = self.subtrees[path]
        return [
            path + sub
            for sub, _ in node.nodes()
            if sub != ()
        ]

    # ------------------------------------------------------------------
    def pattern(self, p: Pattern, context: Path) -> FrozenSet[Path]:
        key = (id(p), context)
        cached = self._pattern_cache.get(key)
        if cached is not None:
            return cached
        starts = (
            self.strict_descendants(context)
            if p.descendant
            else self.children_of(context)
        )
        out: Set[Path] = set()
        for start in starts:
            out |= self.phi(p.phi, start)
        result = frozenset(out)
        self._pattern_cache[key] = result
        return result

    def phi(self, phi: Phi, context: Path) -> FrozenSet[Path]:
        key = (id(phi), context)
        cached = self._phi_cache.get(key)
        if cached is not None:
            return cached
        result = self._phi(phi, context)
        self._phi_cache[key] = result
        return result

    def _phi(self, phi: Phi, context: Path) -> FrozenSet[Path]:
        if isinstance(phi, Test):
            if self.subtrees[context].label == phi.name:
                return frozenset({context})
            return frozenset()
        if isinstance(phi, Wildcard):
            return frozenset({context})
        if isinstance(phi, Disj):
            return self.phi(phi.left, context) | self.phi(phi.right, context)
        if isinstance(phi, Child):
            out: Set[Path] = set()
            for w in self.phi(phi.left, context):
                for child in self.children_of(w):
                    out |= self.phi(phi.right, child)
            return frozenset(out)
        if isinstance(phi, Desc):
            out = set()
            for w in self.phi(phi.left, context):
                for descendant in self.strict_descendants(w):
                    out |= self.phi(phi.right, descendant)
            return frozenset(out)
        if isinstance(phi, Filter):
            return frozenset(
                v
                for v in self.phi(phi.inner, context)
                if self.pattern(phi.predicate, v)
            )
        raise AssertionError(f"unknown φ node {phi!r}")


def evaluate(pattern: Pattern, tree: Tree, context: Path = ()) -> FrozenSet[Path]:
    """``f_P(t, u)`` — the set of selected node addresses."""
    return _Evaluator(tree).pattern(pattern, context)


def select(pattern: Pattern, tree: Tree) -> List[Path]:
    """Addresses selected from the root, in document order.

    Dewey addresses sort lexicographically exactly in document order.
    """
    return sorted(evaluate(pattern, tree, ()))


def select_subtrees(pattern: Pattern, tree: Tree) -> List[Tree]:
    """The selected subtrees ``t/u``, in document order."""
    return [tree.subtree(path) for path in select(pattern, tree)]


def matches(pattern: Pattern, tree: Tree, path: Path) -> bool:
    """Whether ``pattern`` selects the node at ``path`` (from the root)."""
    return path in evaluate(pattern, tree, ())
