"""Nondeterministic unranked tree automata — Definition 2.

An NTA is ``(Q, Σ, δ, F)`` where ``δ(q, a)`` is a regular language over ``Q``
(the *horizontal* language), here represented by an NFA whose alphabet
consists of tree-automaton states — the paper's NTA(NFA).  A run labels every
node ``v`` with a state ``λ(v)`` such that the children labels form a word of
``δ(λ(v), lab(v))``; leaves need ``ε ∈ δ(λ(v), lab(v))``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Mapping, Tuple

from repro.errors import InvalidSchemaError
from repro.strings.nfa import NFA
from repro.trees.tree import Tree

State = Hashable


class NTA:
    """An unranked nondeterministic tree automaton with NFA transitions.

    Parameters
    ----------
    states:
        The state set ``Q``.
    alphabet:
        The node-label alphabet ``Σ``.
    delta:
        Mapping ``(q, a) -> NFA over states``; missing entries denote the
        empty horizontal language.
    finals:
        Accepting (root) states ``F``.
    """

    def __init__(
        self,
        states: Iterable[State],
        alphabet: Iterable[str],
        delta: Mapping[Tuple[State, str], NFA],
        finals: Iterable[State],
    ) -> None:
        self.states: FrozenSet[State] = frozenset(states)
        self.alphabet: FrozenSet[str] = frozenset(alphabet)
        self.finals: FrozenSet[State] = frozenset(finals)
        self.delta: Dict[Tuple[State, str], NFA] = {}
        if not self.finals <= self.states:
            raise InvalidSchemaError("final states must be states")
        for (state, symbol), nfa in delta.items():
            if state not in self.states:
                raise InvalidSchemaError(f"transition for unknown state {state!r}")
            if symbol not in self.alphabet:
                raise InvalidSchemaError(f"transition for unknown symbol {symbol!r}")
            if not nfa.alphabet <= self.states:
                raise InvalidSchemaError(
                    "horizontal language must be over the automaton's states"
                )
            self.delta[(state, symbol)] = nfa

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"NTA(|Q|={len(self.states)}, |Σ|={len(self.alphabet)}, "
            f"|δ|={len(self.delta)})"
        )

    @property
    def size(self) -> int:
        """Paper size measure: ``|Q| + |Σ| + Σ |δ(q,a)|`` with ``|δ(q,a)|``
        the size of the representing NFA."""
        return (
            len(self.states)
            + len(self.alphabet)
            + sum(nfa.size for nfa in self.delta.values())
        )

    def horizontal(self, state: State, symbol: str) -> NFA:
        """``δ(q, a)`` (the empty-language NFA when undefined)."""
        nfa = self.delta.get((state, symbol))
        if nfa is None:
            return NFA.empty_language(self.states)
        return nfa

    def content_hash(self) -> str:
        """Stable representation digest (see :meth:`DTD.content_hash`);
        keys the compiled-session registry for automaton schemas."""
        cached = getattr(self, "_content_hash", None)
        if cached is None:
            from repro.util import stable_digest

            rules = sorted(
                f"{(state, symbol)!r}->{nfa.content_hash()}"
                for (state, symbol), nfa in self.delta.items()
            )
            cached = stable_digest(
                "nta",
                repr(sorted(self.states, key=repr)),
                repr(sorted(self.alphabet, key=repr)),
                repr(sorted(self.finals, key=repr)),
                *rules,
            )
            self._content_hash = cached
        return cached

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def _step_over_sets(
        self, nfa: NFA, nfa_states: FrozenSet, allowed: FrozenSet[State]
    ) -> FrozenSet:
        """NFA states reachable by reading *any* symbol from ``allowed``."""
        out: set = set()
        for src in nfa_states:
            row = nfa.transitions.get(src)
            if not row:
                continue
            for symbol, targets in row.items():
                if symbol in allowed:
                    out.update(targets)
        return frozenset(out)

    def states_of(self, tree: Tree) -> FrozenSet[State]:
        """All states ``q`` such that some run assigns ``q`` to the root.

        Bottom-up dynamic programming: for each node the set of assignable
        states is computed from the children's sets by running each
        horizontal NFA over the *sets* (any-symbol-of-set steps) — linear in
        ``|t|`` and polynomial in the automaton size.
        """
        memo: Dict[int, FrozenSet[State]] = {}

        def compute(node: Tree) -> FrozenSet[State]:
            cached = memo.get(id(node))
            if cached is not None:
                return cached
            child_sets = [compute(child) for child in node.children]
            assignable: set = set()
            for state in self.states:
                nfa = self.delta.get((state, node.label))
                if nfa is None:
                    continue
                current = nfa.initial
                for child_set in child_sets:
                    if not current:
                        break
                    current = self._step_over_sets(nfa, current, child_set)
                if current & nfa.finals:
                    assignable.add(state)
            result = frozenset(assignable)
            memo[id(node)] = result
            return result

        return compute(tree)

    def accepts(self, tree: Tree) -> bool:
        """Whether some accepting run exists on ``tree``."""
        return bool(self.states_of(tree) & self.finals)

    def a_run(self, tree: Tree) -> Dict[Tuple[int, ...], State] | None:
        """One accepting run as a map ``node address -> state``, or ``None``.

        Extracted top-down from the bottom-up state sets.
        """
        sets: Dict[Tuple[int, ...], FrozenSet[State]] = {}

        def collect(node: Tree, path: Tuple[int, ...]) -> FrozenSet[State]:
            child_sets = []
            for index, child in enumerate(node.children):
                child_sets.append(collect(child, path + (index,)))
            assignable: set = set()
            for state in self.states:
                nfa = self.delta.get((state, node.label))
                if nfa is None:
                    continue
                current = nfa.initial
                for child_set in child_sets:
                    if not current:
                        break
                    current = self._step_over_sets(nfa, current, child_set)
                if current & nfa.finals:
                    assignable.add(state)
            sets[path] = frozenset(assignable)
            return sets[path]

        collect(tree, ())
        root_choices = sets[()] & self.finals
        if not root_choices:
            return None
        run: Dict[Tuple[int, ...], State] = {}

        def assign(node: Tree, path: Tuple[int, ...], state: State) -> None:
            run[path] = state
            nfa = self.delta[(state, node.label)]
            # Find a horizontal word consistent with the children's sets.
            choice = self._horizontal_word(nfa, [
                sets[path + (i,)] for i in range(len(node.children))
            ])
            assert choice is not None, "membership sets promise a word"
            for index, child_state in enumerate(choice):
                assign(node.children[index], path + (index,), child_state)

        assign(tree, (), sorted(root_choices, key=repr)[0])
        return run

    def _horizontal_word(self, nfa: NFA, child_sets) -> Tuple[State, ...] | None:
        """A word ``q₁…q_n`` accepted by ``nfa`` with ``q_i ∈ child_sets[i]``."""
        frontier: Dict = {s: () for s in nfa.initial}
        for child_set in child_sets:
            next_frontier: Dict = {}
            for src, word in frontier.items():
                row = nfa.transitions.get(src)
                if not row:
                    continue
                for symbol, targets in row.items():
                    if symbol not in child_set:
                        continue
                    for target in targets:
                        if target not in next_frontier:
                            next_frontier[target] = word + (symbol,)
            frontier = next_frontier
            if not frontier:
                return None
        for state, word in frontier.items():
            if state in nfa.finals:
                return word
        return None

    # ------------------------------------------------------------------
    def map_states(self, mapping) -> "NTA":
        """Rename states through an injective ``mapping`` (also remaps the
        horizontal alphabets)."""
        return NTA(
            {mapping(q) for q in self.states},
            self.alphabet,
            {
                (mapping(q), a): nfa.map_symbols(mapping)
                for (q, a), nfa in self.delta.items()
            },
            {mapping(q) for q in self.finals},
        )
