"""Finiteness of NTA(NFA) languages — Proposition 4(1).

``L(A)`` is infinite iff the *useful* part of the automaton (states that are
productive and occur in some accepting run) admits pumping, which happens in
exactly two ways:

* **vertical pumping** — a cycle in the graph "state ``q`` can have a child
  subtree processed in state ``q'``" restricted to useful states (a loop on
  a useful state, in the words of the proof: "a language is infinite iff
  there is a loop on some useful state");
* **horizontal pumping** — some useful state ``q`` and symbol ``a`` whose
  horizontal language ``δ(q,a)``, restricted to productive states, is
  infinite (arbitrarily wide nodes).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable

from repro.tree_automata.emptiness import productive_states
from repro.tree_automata.nta import NTA
from repro.util import has_cycle

State = Hashable


def useful_states(nta: NTA) -> FrozenSet[State]:
    """States occurring in at least one accepting run.

    ``q`` is useful iff it is productive and either accepting or usable as a
    child of a useful state (computed top-down over the productive-restricted
    horizontal languages).
    """
    productive, _ = productive_states(nta)
    useful: set = set(nta.finals & productive)
    frontier = list(useful)
    usable_cache: Dict[tuple, FrozenSet[State]] = {}
    while frontier:
        state = frontier.pop()
        for (src, symbol), nfa in nta.delta.items():
            if src != state:
                continue
            key = (src, symbol)
            usable = usable_cache.get(key)
            if usable is None:
                usable = nfa.used_symbols(productive)
                usable_cache[key] = usable
            for child in usable:
                if child not in useful:
                    useful.add(child)
                    frontier.append(child)
    return frozenset(useful)


def is_finite(nta: NTA) -> bool:
    """Whether ``L(A)`` is finite (Proposition 4(1), PTIME)."""
    productive, _ = productive_states(nta)
    useful = useful_states(nta)
    if not useful & nta.finals:
        return True  # empty language

    vertical: Dict[State, set] = {q: set() for q in useful}
    for (state, _symbol), nfa in nta.delta.items():
        if state not in useful:
            continue
        usable = nfa.used_symbols(productive)
        # Horizontal pumping: infinitely many words of productive states.
        if usable and not nfa.accepts_finitely_many(productive):
            return False
        vertical[state].update(child for child in usable if child in useful)
    # Vertical pumping: a cycle among useful states.
    return not has_cycle(vertical)
