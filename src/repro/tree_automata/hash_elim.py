"""The #-elimination lift used in the proof of Theorem 20.

Theorem 20 turns a deleting transducer ``T`` into a non-deleting ``T'`` that
emits a placeholder ``#`` wherever ``T`` would delete, and then needs a tree
automaton ``B_out`` accepting exactly the trees ``t'`` over ``Σ ∪ {#}`` whose
#-*elimination* ``γ(t')`` (splice every #-node's children into its parent's
child sequence, recursively) is accepted by a given automaton ``A`` over
``Σ``.  This module builds that lift.

Construction
------------
States of the lift: ``Q ∪ P`` where ``P`` contains *pair states*
``((q, a), s₁, s₂)`` — "this #-node's spliced-out children take the
horizontal automaton of ``δ(q, a)`` from ``s₁`` to ``s₂``".  Every horizontal
NFA is extended with jump transitions ``s₁ →(pair)→ s₂`` for its own pairs,
so a parent may delegate a stretch of its child word to a #-child, and
#-nodes nest (a #-child of a #-node delegates within the same automaton).
"""

from __future__ import annotations

from typing import Dict, Hashable, Tuple

from repro.errors import InvalidSchemaError
from repro.strings.nfa import NFA
from repro.tree_automata.nta import NTA

State = Hashable

HASH = "#"


def hash_elimination_lift(nta: NTA, hash_symbol: str = HASH) -> NTA:
    """An NTA over ``Σ ∪ {hash_symbol}`` accepting ``{t : γ(t) ∈ L(nta)}``.

    ``γ`` replaces every node labeled ``hash_symbol`` by its (recursively
    eliminated) children.  A tree whose root is the hash symbol is accepted
    exactly when its elimination is a *single* tree of ``L(nta)`` (an empty
    or multi-tree hedge is not a tree, hence never in ``L(nta)``); this is
    handled by a virtual root context whose horizontal automaton accepts
    precisely one final-state symbol, with its own pair states so hash
    nodes nest below a hash root as everywhere else.
    """
    if hash_symbol in nta.alphabet:
        raise InvalidSchemaError(
            f"hash symbol {hash_symbol!r} already occurs in the alphabet"
        )

    # Horizontal automata per context.  The virtual root context accepts
    # exactly the length-one words "f" with f final — its key can never
    # collide with a real (q, a) context because a = hash_symbol is not in
    # the alphabet.
    root_context = ("__hash_root__", hash_symbol)
    contexts: Dict[Tuple[State, str], NFA] = dict(nta.delta)
    contexts[root_context] = NFA(
        {0, 1},
        nta.states,
        {0: {final: {1} for final in nta.finals}},
        {0},
        {1},
    )

    # Pair states, grouped by the owning context.
    pair_states: Dict[Tuple[State, str], list] = {}
    for context, nfa in contexts.items():
        pair_states[context] = [
            (context, s1, s2) for s1 in nfa.states for s2 in nfa.states
        ]

    all_pairs = [p for pairs in pair_states.values() for p in pairs]
    new_states = set(nta.states) | set(all_pairs)

    def extended(context: Tuple[State, str], initial, finals) -> NFA:
        """The horizontal NFA of ``context`` over ``Q ∪ P`` with jump
        transitions for its own pair states."""
        base = contexts[context]
        table: Dict[State, Dict[Hashable, set]] = {
            src: {sym: set(tgts) for sym, tgts in row.items()}
            for src, row in base.transitions.items()
        }
        for pair in pair_states[context]:
            _, s1, s2 = pair
            table.setdefault(s1, {}).setdefault(pair, set()).add(s2)
        return NFA(base.states, new_states, table, initial, finals)

    delta: Dict[Tuple[State, str], NFA] = {}
    for context, base in nta.delta.items():
        q, a = context
        delta[(q, a)] = extended(context, base.initial, base.finals)
    for context, pairs in pair_states.items():
        for pair in pairs:
            _, s1, s2 = pair
            delta[(pair, hash_symbol)] = extended(context, {s1}, {s2})

    # A hash-rooted tree is accepted through the root pair "0 → 1": its
    # children hedge eliminates to exactly one tree in a final state.
    return NTA(
        new_states,
        nta.alphabet | {hash_symbol},
        delta,
        set(nta.finals) | {(root_context, 0, 1)},
    )


def eliminate_hashes(tree, hash_symbol: str = HASH):
    """The function ``γ`` on explicit trees: splice out every #-node.

    Returns a *hedge* (tuple of trees) because the root itself may be a
    #-node.
    """
    from repro.trees.tree import Tree

    def gamma(node) -> tuple:
        spliced: list = []
        for child in node.children:
            spliced.extend(gamma(child))
        if node.label == hash_symbol:
            return tuple(spliced)
        return (Tree(node.label, spliced),)

    return gamma(tree)
