"""The #-elimination lift used in the proof of Theorem 20.

Theorem 20 turns a deleting transducer ``T`` into a non-deleting ``T'`` that
emits a placeholder ``#`` wherever ``T`` would delete, and then needs a tree
automaton ``B_out`` accepting exactly the trees ``t'`` over ``Σ ∪ {#}`` whose
#-*elimination* ``γ(t')`` (splice every #-node's children into its parent's
child sequence, recursively) is accepted by a given automaton ``A`` over
``Σ``.  This module builds that lift.

Construction
------------
States of the lift: ``Q ∪ P`` where ``P`` contains *pair states*
``((q, a), s₁, s₂)`` — "this #-node's spliced-out children take the
horizontal automaton of ``δ(q, a)`` from ``s₁`` to ``s₂``".  Every horizontal
NFA is extended with jump transitions ``s₁ →(pair)→ s₂`` for its own pairs,
so a parent may delegate a stretch of its child word to a #-child, and
#-nodes nest (a #-child of a #-node delegates within the same automaton).
"""

from __future__ import annotations

from typing import Dict, Hashable, Tuple

from repro.errors import InvalidSchemaError
from repro.strings.nfa import NFA
from repro.tree_automata.nta import NTA

State = Hashable

HASH = "#"


def hash_elimination_lift(nta: NTA, hash_symbol: str = HASH) -> NTA:
    """An NTA over ``Σ ∪ {hash_symbol}`` accepting ``{t : γ(t) ∈ L(nta)}``.

    ``γ`` replaces every node labeled ``hash_symbol`` by its (recursively
    eliminated) children; trees whose root is the hash symbol are never
    accepted (their elimination is a hedge, not a tree).
    """
    if hash_symbol in nta.alphabet:
        raise InvalidSchemaError(
            f"hash symbol {hash_symbol!r} already occurs in the alphabet"
        )

    # Pair states, grouped by the owning (q, a) context.
    pair_states: Dict[Tuple[State, str], list] = {}
    for (q, a), nfa in nta.delta.items():
        pairs = [
            ((q, a), s1, s2) for s1 in nfa.states for s2 in nfa.states
        ]
        pair_states[(q, a)] = pairs

    all_pairs = [p for pairs in pair_states.values() for p in pairs]
    new_states = set(nta.states) | set(all_pairs)

    def extended(context: Tuple[State, str], initial, finals) -> NFA:
        """The horizontal NFA of ``context`` over ``Q ∪ P`` with jump
        transitions for its own pair states."""
        base = nta.delta[context]
        table: Dict[State, Dict[Hashable, set]] = {
            src: {sym: set(tgts) for sym, tgts in row.items()}
            for src, row in base.transitions.items()
        }
        for pair in pair_states[context]:
            _, s1, s2 = pair
            table.setdefault(s1, {}).setdefault(pair, set()).add(s2)
        return NFA(base.states, new_states, table, initial, finals)

    delta: Dict[Tuple[State, str], NFA] = {}
    for context, base in nta.delta.items():
        q, a = context
        delta[(q, a)] = extended(context, base.initial, base.finals)
    for context, pairs in pair_states.items():
        for pair in pairs:
            _, s1, s2 = pair
            delta[(pair, hash_symbol)] = extended(context, {s1}, {s2})

    return NTA(
        new_states,
        nta.alphabet | {hash_symbol},
        delta,
        nta.finals,
    )


def eliminate_hashes(tree, hash_symbol: str = HASH):
    """The function ``γ`` on explicit trees: splice out every #-node.

    Returns a *hedge* (tuple of trees) because the root itself may be a
    #-node.
    """
    from repro.trees.tree import Tree

    def gamma(node) -> tuple:
        spliced: list = []
        for child in node.children:
            spliced.extend(gamma(child))
        if node.label == hash_symbol:
            return tuple(spliced)
        return (Tree(node.label, spliced),)

    return gamma(tree)
