"""Operations on unranked tree automata.

Intersection (product), bottom-up determinism and completeness tests,
completion, complementation of complete deterministic automata (the DTAc
complement step of Theorem 20: "switch the final and non-final states"), and
bottom-up subset-construction determinization (exponential — guarded).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Hashable, Tuple

from repro.errors import BudgetExceededError, NotCompleteError, NotDeterministicError
from repro.strings.nfa import NFA
from repro.tree_automata.nta import NTA

State = Hashable


def _pair_product_nfa(left: NFA, right: NFA) -> NFA:
    """Product of two horizontal NFAs reading *pairs* of symbols.

    Accepts ``(u₁,v₁)…(u_n,v_n)`` iff ``left`` accepts ``u₁…u_n`` and
    ``right`` accepts ``v₁…v_n`` — the horizontal language of a product tree
    automaton whose states are pairs.  The reachable pair space is explored
    on the interned kernel.
    """
    from repro.kernel.nfa_kernel import pair_product_components

    states, table, initial, finals, alphabet = pair_product_components(left, right)
    if not states:
        return NFA.empty_language(alphabet)
    return NFA(states, alphabet, table, initial, finals)


def intersect(left: NTA, right: NTA) -> NTA:
    """Product automaton with ``L = L(left) ∩ L(right)``."""
    alphabet = left.alphabet & right.alphabet
    states = {(p, q) for p in left.states for q in right.states}
    delta: Dict[Tuple[State, str], NFA] = {}
    for (p, symbol), nfa_left in left.delta.items():
        if symbol not in alphabet:
            continue
        for (q, symbol_right), nfa_right in right.delta.items():
            if symbol_right != symbol:
                continue
            product = _pair_product_nfa(nfa_left, nfa_right)
            # Enlarge the horizontal alphabet to the full pair state set so
            # the NTA invariant (alphabet ⊆ states) holds.
            delta[((p, q), symbol)] = product.with_alphabet(states)
    finals = {(p, q) for p in left.finals for q in right.finals}
    return NTA(states, alphabet, delta, finals)


def is_bottom_up_deterministic(nta: NTA) -> bool:
    """Definition 2: ``δ(q,a) ∩ δ(q',a) = ∅`` for all ``q ≠ q'``."""
    by_symbol: Dict[str, list] = {}
    for (state, symbol), nfa in nta.delta.items():
        by_symbol.setdefault(symbol, []).append((state, nfa))
    for rules in by_symbol.values():
        for i, (state_i, nfa_i) in enumerate(rules):
            for state_j, nfa_j in rules[i + 1 :]:
                if state_i == state_j:
                    continue
                if not nfa_i.product(nfa_j).is_empty():
                    return False
    return True


def is_complete(nta: NTA) -> bool:
    """Whether ``⋃_q δ(q,a) = Q*`` for every symbol (may determinize the
    union — exponential in the worst case)."""
    for symbol in nta.alphabet:
        union: NFA | None = None
        for state in nta.states:
            nfa = nta.delta.get((state, symbol))
            if nfa is None:
                continue
            union = nfa if union is None else union.union(nfa)
        if union is None:
            return False
        if not union.with_alphabet(nta.states).is_universal():
            return False
    return True


def complete(nta: NTA, sink_name: State | None = None) -> NTA:
    """A complete automaton for the same language (adds a sink state).

    For every symbol the sink receives the complement of ``⋃_q δ(q,a)``
    (extended over the sink-enlarged state alphabet), so every tree has
    exactly one extra run through the sink where it had none.  Preserves
    bottom-up determinism.
    """
    sink: State = sink_name if sink_name is not None else ("__sink__", len(nta.states))
    while sink in nta.states:
        sink = (sink, 0)
    states = set(nta.states) | {sink}
    delta: Dict[Tuple[State, str], NFA] = {
        key: nfa.with_alphabet(states) for key, nfa in nta.delta.items()
    }
    for symbol in nta.alphabet:
        union: NFA | None = None
        for state in nta.states:
            nfa = nta.delta.get((state, symbol))
            if nfa is None:
                continue
            union = nfa if union is None else union.union(nfa)
        if union is None:
            missing = NFA.universal(states)
        else:
            missing = union.complement(states).to_nfa()
        delta[(sink, symbol)] = missing
    return NTA(states, nta.alphabet, delta, nta.finals)


def complement_dtac(nta: NTA, check: bool = True) -> NTA:
    """Complement of a bottom-up deterministic *complete* automaton by
    flipping final states (Theorem 20: "the complement Āout can easily be
    computed by switching the final and non-final states").

    With ``check=True`` determinism and completeness are verified first
    (completeness verification may be expensive; pass ``check=False`` for
    automata complete by construction).
    """
    if check:
        if not is_bottom_up_deterministic(nta):
            raise NotDeterministicError("complementation needs a deterministic NTA")
        if not is_complete(nta):
            raise NotCompleteError("complementation needs a complete NTA")
    return NTA(nta.states, nta.alphabet, nta.delta, nta.states - nta.finals)


def determinize(nta: NTA, max_states: int = 4096) -> NTA:
    """Bottom-up subset construction: an equivalent DTAc whose states are the
    reachable subsets ``{states_of(t) | t}`` (EXPTIME in general — guarded by
    ``max_states``).
    """
    # Fixpoint over reachable subsets.
    reachable: set[FrozenSet[State]] = set()
    changed = True
    while changed:
        changed = False
        for symbol in nta.alphabet:
            for subset in _subsets_from_words(nta, symbol, frozenset(reachable)):
                if subset not in reachable:
                    reachable.add(subset)
                    changed = True
                    if len(reachable) > max_states:
                        raise BudgetExceededError(
                            f"determinization exceeded {max_states} subset states"
                        )
    subset_states = frozenset(reachable)

    delta: Dict[Tuple[FrozenSet[State], str], NFA] = {}
    for symbol in nta.alphabet:
        tracker_states, tracker_transitions, initial = _tracker(nta, symbol, subset_states)
        for target in subset_states:
            finals = {h for h in tracker_states if _outcome(nta, symbol, h) == target}
            if not finals and _outcome_never(nta, symbol, target):
                continue
            delta[(target, symbol)] = NFA(
                tracker_states,
                subset_states,
                tracker_transitions,
                {initial},
                finals,
            )
    finals = {subset for subset in subset_states if subset & nta.finals}
    return NTA(subset_states, nta.alphabet, delta, finals)


def _tracker(nta: NTA, symbol: str, alphabet: FrozenSet[FrozenSet[State]]):
    """The deterministic 'tracker' automaton for one symbol: its states are
    tuples of NFA state-sets, one per (q, symbol) rule, advanced jointly on
    each child subset.  Reachable part only."""
    rules = sorted(
        ((q, nfa) for (q, s), nfa in nta.delta.items() if s == symbol),
        key=lambda item: repr(item[0]),
    )
    initial = tuple(nfa.initial for _, nfa in rules)
    states = {initial}
    transitions: Dict = {}
    frontier = deque([initial])
    while frontier:
        config = frontier.popleft()
        for subset in alphabet:
            successor = tuple(
                nta._step_over_sets(nfa, config[i], subset)
                for i, (_, nfa) in enumerate(rules)
            )
            transitions.setdefault(config, {}).setdefault(subset, set()).add(successor)
            if successor not in states:
                states.add(successor)
                frontier.append(successor)
    return states, transitions, initial


def _outcome(nta: NTA, symbol: str, tracker_state) -> FrozenSet[State]:
    rules = sorted(
        ((q, nfa) for (q, s), nfa in nta.delta.items() if s == symbol),
        key=lambda item: repr(item[0]),
    )
    return frozenset(
        q for i, (q, nfa) in enumerate(rules) if tracker_state[i] & nfa.finals
    )


def _outcome_never(nta: NTA, symbol: str, target: FrozenSet[State]) -> bool:
    """Cheap check that ``target`` can never be the outcome for ``symbol``
    (used only to skip emitting all-empty horizontal languages)."""
    return True


def _subsets_from_words(
    nta: NTA, symbol: str, alphabet: FrozenSet[FrozenSet[State]]
):
    """All outcome subsets reachable by running the tracker for ``symbol``
    over words of already-reachable subsets."""
    tracker_states, _, _ = _tracker(nta, symbol, alphabet)
    return {_outcome(nta, symbol, h) for h in tracker_states}
