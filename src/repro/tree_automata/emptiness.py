"""Emptiness of NTA(NFA) — Proposition 4(2,3) and Fig. A.1.

Two implementations are provided:

* :func:`reachable_states_fig_a1` — the *verbatim* algorithm of Fig. A.1
  (``|Q|`` rounds, each re-testing ``δ(q,a) ∩ R*_{i-1} ≠ ∅``);
* :func:`productive_states` — the same fixpoint run to stabilization with a
  changed-flag (what one would actually ship); it additionally records, for
  every productive state, a witness symbol and horizontal word, from which
  :func:`witness_dag` assembles the DAG *description* of a witness tree that
  Proposition 4(3) promises in PTIME (explicit witnesses can be exponential,
  hence the DAG).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Tuple

from repro.errors import BudgetExceededError
from repro.trees.dag import DagHedge, DagTree, unfold_tree
from repro.trees.tree import Tree
from repro.tree_automata.nta import NTA

State = Hashable


def reachable_states_fig_a1(nta: NTA) -> FrozenSet[State]:
    """The set ``R`` computed by the algorithm of Fig. A.1, verbatim.

    ``R₁ := {q | ∃a, ε ∈ δ(q,a)}``;
    ``R_i := {q | ∃a, δ(q,a) ∩ R*_{i-1} ≠ ∅}`` for ``i = 2..|Q|``;
    ``R := R_{|Q|}``.
    """
    symbols = sorted(nta.alphabet, key=repr)
    current: FrozenSet[State] = frozenset(
        q
        for q in nta.states
        if any(nta.horizontal(q, a).accepts(()) for a in symbols)
    )
    for _ in range(2, len(nta.states) + 1):
        current = frozenset(
            q
            for q in nta.states
            if any(not nta.horizontal(q, a).is_empty(current) for a in symbols)
        )
    return current


def productive_states(
    nta: NTA,
) -> Tuple[FrozenSet[State], Dict[State, Tuple[str, Tuple[State, ...]]]]:
    """States that accept at least one tree, with per-state witnesses.

    Returns ``(R, witness)`` where ``witness[q] = (a, w)`` records a symbol
    and a horizontal word ``w ∈ δ(q,a) ∩ R*`` discovered when ``q`` entered
    ``R`` (so ``w`` mentions only states added earlier — the witness DAG is
    therefore acyclic).

    Runs on the interned kernel (:mod:`repro.kernel.nta_kernel`): the
    productive set lives in per-horizontal-NFA bitmasks updated
    incrementally, instead of the seed's whole-δ rescans (that version is
    preserved as :func:`repro.kernel.reference.productive_states_object`).
    """
    from repro.kernel.nta_kernel import productive_states as _kernel_productive

    return _kernel_productive(nta)


def is_empty(nta: NTA) -> bool:
    """Whether ``L(A) = ∅`` (Proposition 4(2))."""
    productive, _ = productive_states(nta)
    return not (productive & nta.finals)


def witness_dag(nta: NTA) -> DagTree | None:
    """A DAG description of some tree in ``L(A)`` (Proposition 4(3)).

    The DAG has at most one node per automaton state; its unfolding may be
    exponentially large, which is exactly why the paper generates a
    *description*.
    Returns ``None`` when the language is empty.
    """
    productive, witness = productive_states(nta)
    roots = sorted(productive & nta.finals, key=repr)
    if not roots:
        return None
    memo: Dict[State, DagTree] = {}

    def build(state: State) -> DagTree:
        cached = memo.get(state)
        if cached is not None:
            return cached
        symbol, word = witness[state]
        node = DagTree(symbol, DagHedge([build(child) for child in word]))
        memo[state] = node
        return node

    return build(roots[0])


def witness_tree(nta: NTA, max_nodes: int = 100_000) -> Tree | None:
    """An explicit witness tree, or ``None`` when the language is empty.

    Raises :class:`BudgetExceededError` when the smallest recorded witness
    unfolds to more than ``max_nodes`` nodes.
    """
    dag = witness_dag(nta)
    if dag is None:
        return None
    try:
        return unfold_tree(dag, max_nodes)
    except BudgetExceededError:
        raise
