"""Unranked tree automata (Definition 2 of the paper).

* :mod:`~repro.tree_automata.nta` — nondeterministic unranked tree automata
  with NFA-represented horizontal languages, membership testing;
* :mod:`~repro.tree_automata.emptiness` — the Fig. A.1 emptiness algorithm
  with witness generation (Proposition 4(2,3));
* :mod:`~repro.tree_automata.finiteness` — finiteness (Proposition 4(1));
* :mod:`~repro.tree_automata.ops` — product, determinism/completeness checks,
  completion, complementation of DTAc, bottom-up determinization;
* :mod:`~repro.tree_automata.hash_elim` — the #-elimination lift used in the
  proof of Theorem 20.
"""

from repro.tree_automata.nta import NTA
from repro.tree_automata.emptiness import (
    is_empty,
    productive_states,
    reachable_states_fig_a1,
    witness_dag,
    witness_tree,
)
from repro.tree_automata.finiteness import is_finite
from repro.tree_automata.ops import (
    complement_dtac,
    complete,
    determinize,
    intersect,
    is_bottom_up_deterministic,
    is_complete,
)
from repro.tree_automata.hash_elim import hash_elimination_lift

__all__ = [
    "NTA",
    "is_empty",
    "productive_states",
    "reachable_states_fig_a1",
    "witness_dag",
    "witness_tree",
    "is_finite",
    "intersect",
    "complete",
    "complement_dtac",
    "determinize",
    "is_bottom_up_deterministic",
    "is_complete",
    "hash_elimination_lift",
]
