"""The Lemma 14 typechecking engine (Theorem 15), demand-driven.

The paper's counterexample automaton guesses, for every input node, up to
``M = C·K`` triples ``(transducer state, A-state ℓ, A-state r)`` asserting
"the output hedge this node contributes in that state takes the output
content-model DFA from ``ℓ`` to ``r``", and defers their verification down
the tree.  Its emptiness check therefore computes exactly which *tuples of
behaviors* are realizable.  This module computes those tuples directly by a
demand-driven least fixpoint over two mutually recursive tables (per output
symbol σ with content DFA ``A = dout(σ)``):

``tree[(σ, b, P)]``
    the set of tuples ``τ = ((ℓ₁,r₁),…,(ℓ_m,r_m))`` such that some tree
    ``t ∈ L(din, b)`` satisfies: for all ``i``, ``top(T^{P_i}(t))`` takes
    ``A`` from ``ℓ_i`` to ``r_i`` (one tree realizes all components jointly);

``hedge[(σ, a, P)]``
    the analogous slot-pair tuples ``π`` realizable by hedges
    ``t₁⋯t_n`` with ``top(t₁)⋯top(t_n) ∈ L(din(a))``, each ``t_j`` valid.

``hedge`` is evaluated by a product BFS (content DFA × one ``A``-state per
slot) whose transitions consume ``tree`` tuples of the children; ``tree`` is
assembled from ``hedge`` of the deferred tuple ``P'`` by chaining the rhs
top-level segments through ``A`` (the paper's step (4)).  The typechecking
condition itself is Section 5's formulation, valid for all DTD inputs:
for every reachable pair ``(q, a)`` and rhs node ``u`` with label σ,
``L_{q,a,u} ⊆ L(dout(σ))`` — checked on the same product (step (3)).

Tuple lengths never exceed ``C·K`` for transducers in ``T^{C,K}_trac``
(Lemma 14's counting argument), which bounds the tables polynomially for
fixed ``C·K``; the engine enforces the bound and reports a clean
:class:`~repro.errors.BudgetExceededError` when an unrestricted transducer
blows up — that is the paper's intractability frontier showing itself.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.errors import BudgetExceededError, ClassViolationError
from repro.schemas.dtd import DTD
from repro.strings.dfa import DFA
from repro.transducers.analysis import analyze
from repro.transducers.rhs import RhsState, RhsSym, iter_rhs_nodes, top_decomposition, top_states
from repro.transducers.transducer import TreeTransducer
from repro.trees.generate import minimal_tree
from repro.trees.tree import Tree
from repro.core.problem import TypecheckResult
from repro.core.reachability import Pair, context_for, reachable_pairs

Slot = Tuple[object, object]  # (A-state, A-state)
TupleKey = Tuple[str, str, Tuple[str, ...]]  # (σ, input symbol, P)


@dataclass(frozen=True)
class Violation:
    """A failing local inclusion ``L_{q,a,u} ⊄ dout(σ)``."""

    pair: Pair
    rhs_path: Tuple[int, ...]
    sigma: str
    pi: Tuple[Slot, ...]
    bad_state: object


@dataclass
class HedgeEntry:
    """Fixpoint cell for a ``hedge`` key, including the product graph.

    ``accepted[π]`` stores the witness child word ``[(c, τ), …]``,
    materialized the moment π is first derived — witnesses therefore only
    reference configurations recorded strictly earlier, which keeps the
    recursive counterexample construction well-founded.
    """

    accepted: Dict[Tuple[Slot, ...], Tuple[Tuple[str, Tuple], ...]] = field(
        default_factory=dict
    )
    nodes: Set[Tuple] = field(default_factory=set)
    edges: List[Tuple] = field(default_factory=list)  # (src, c, τ, dst)
    seeds: Set[Tuple] = field(default_factory=set)


class ForwardEngine:
    """Fixpoint engine shared by Theorem 15 typechecking, counterexample
    generation (Cor. 38) and the counterexample-NTA export (Cor. 39)."""

    def __init__(
        self,
        transducer: TreeTransducer,
        din: DTD,
        dout: DTD,
        max_tuple: Optional[int] = None,
        max_product_nodes: int = 500_000,
    ) -> None:
        self.transducer = transducer
        self.din = din
        self.dout = dout
        self.out_alphabet = frozenset(transducer.alphabet | dout.alphabet)
        self.productive = din.productive_symbols()
        self.max_tuple = max_tuple
        self.max_product_nodes = max_product_nodes
        self.work = 0

        self._out_dfa: Dict[str, DFA] = {}
        self._in_useful: Dict[str, Tuple[DFA, frozenset]] = {}
        self._decomp: Dict[Tuple[str, str], Tuple[Tuple[Tuple[str, ...], ...], Tuple[str, ...]]] = {}

        self.tree_vals: Dict[TupleKey, Dict[Tuple[Slot, ...], Tuple[Slot, ...]]] = {}
        # tree_vals[key][τ] = witness π in hedge((σ, b, P')).
        self.hedge_vals: Dict[TupleKey, HedgeEntry] = {}
        self._dependents: Dict[Tuple[str, TupleKey], Set[Tuple[str, TupleKey]]] = {}
        self._dirty: deque = deque()
        self._registered: Set[Tuple[str, TupleKey]] = set()

    # ------------------------------------------------------------------
    # Cached views
    # ------------------------------------------------------------------
    def out_dfa(self, sigma: str) -> DFA:
        dfa = self._out_dfa.get(sigma)
        if dfa is None:
            dfa = self.dout.content_dfa(sigma).complete(self.out_alphabet)
            self._out_dfa[sigma] = dfa
        return dfa

    def decomposition(
        self, state: str, symbol: str
    ) -> Tuple[Tuple[Tuple[str, ...], ...], Tuple[str, ...]]:
        """Segments/deferred-states of ``top(rhs(state, symbol))``; a missing
        rule contributes the empty translation (one empty segment)."""
        key = (state, symbol)
        cached = self._decomp.get(key)
        if cached is None:
            rhs = self.transducer.rules.get(key)
            if rhs is None:
                cached = (((),), ())
            else:
                cached = (top_decomposition(rhs), top_states(rhs))
            self._decomp[key] = cached
        return cached

    def deferred_tuple(self, P: Tuple[str, ...], symbol: str) -> Tuple[str, ...]:
        """The concatenated deferred tuple P' for processing ``symbol``."""
        out: List[str] = []
        for state in P:
            out.extend(self.decomposition(state, symbol)[1])
        result = tuple(out)
        if self.max_tuple is not None and len(result) > self.max_tuple:
            raise BudgetExceededError(
                f"behavior tuple grew to {len(result)} > {self.max_tuple} "
                "(transducer outside the configured T_trac class)"
            )
        return result

    # ------------------------------------------------------------------
    # Fixpoint plumbing
    # ------------------------------------------------------------------
    def _register(self, kind: str, key: TupleKey) -> None:
        node = (kind, key)
        if node in self._registered:
            return
        self._registered.add(node)
        if kind == "tree":
            self.tree_vals[key] = {}
        else:
            self.hedge_vals[key] = HedgeEntry()
        self._dirty.append(node)

    def _depend(self, read: Tuple[str, TupleKey], reader: Tuple[str, TupleKey]) -> None:
        self._register(*read)
        self._dependents.setdefault(read, set()).add(reader)

    def request_hedge(self, sigma: str, symbol: str, P: Tuple[str, ...]) -> TupleKey:
        key = (sigma, symbol, P)
        self._register("hedge", key)
        return key

    def run(self) -> None:
        """Run the chaotic iteration to the least fixpoint."""
        while self._dirty:
            kind, key = self._dirty.popleft()
            grew = (
                self._eval_tree(key) if kind == "tree" else self._eval_hedge(key)
            )
            if grew:
                for dependent in self._dependents.get((kind, key), ()):
                    if dependent not in self._dirty:
                        self._dirty.append(dependent)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def _eval_tree(self, key: TupleKey) -> bool:
        sigma, b, P = key
        if b not in self.productive:
            return False
        deferred = self.deferred_tuple(P, b)
        hedge_key = (sigma, b, deferred)
        self._depend(("hedge", hedge_key), ("tree", key))
        entry = self.hedge_vals[hedge_key]
        dfa = self.out_dfa(sigma)
        table = self.tree_vals[key]
        grew = False
        for pi in entry.accepted:
            for tau in self._assemble(P, b, pi, dfa):
                if tau not in table:
                    table[tau] = pi
                    grew = True
        if len(table) > self.max_product_nodes:
            raise BudgetExceededError(
                f"behavior table for {key!r} exceeded "
                f"{self.max_product_nodes} tuples"
            )
        return grew

    def _assemble(
        self,
        P: Tuple[str, ...],
        b: str,
        pi: Tuple[Slot, ...],
        dfa: DFA,
    ):
        """All τ tuples derivable from hedge behavior π by chaining the rhs
        segments through the (complete) output DFA — the paper's step (4)."""
        per_component: List[List[Slot]] = []
        offset = 0
        for state in P:
            segments, defers = self.decomposition(state, b)
            k = len(defers)
            slots = pi[offset : offset + k]
            offset += k
            pairs: List[Slot] = []
            for start in dfa.states:
                x = dfa.run(segments[0], start=start)
                ok = True
                for j in range(k):
                    slot_start, slot_end = slots[j]
                    if slot_start != x:
                        ok = False
                        break
                    x = dfa.run(segments[j + 1], start=slot_end)
                if ok:
                    pairs.append((start, x))
            if not pairs:
                return
            per_component.append(pairs)
        yield from itertools.product(*per_component)

    def _in_dfa_useful(self, a: str):
        """The input content DFA of ``a`` with its useful-state set (pruning
        the completion sink keeps the key fan-out at the *live* alphabet)."""
        cached = self._in_useful.get(a)
        if cached is None:
            dfa_in = self.din.content_dfa(a)
            as_nfa = dfa_in.to_nfa()
            useful = as_nfa.reachable_states() & as_nfa.coreachable_states()
            cached = (dfa_in, useful)
            self._in_useful[a] = cached
        return cached

    def _eval_hedge(self, key: TupleKey) -> bool:
        sigma, a, P = key
        entry = self.hedge_vals[key]
        dfa_in, useful_in = self._in_dfa_useful(a)
        dfa_out = self.out_dfa(sigma)
        m = len(P)

        # Child alphabet: productive symbols on transitions between useful
        # input-DFA states (dead/sink transitions spawn no work).
        children = sorted(
            {
                c
                for (state, c), target in dfa_in.transitions.items()
                if c in self.productive
                and state in useful_in
                and target in useful_in
            },
            key=repr,
        )
        # Index each child's τ table by the required entry-state vector so a
        # BFS node looks up exactly the matching behaviors instead of
        # scanning the whole table (the table is |Q_A|^{2m} in the worst
        # case; the index fans out by r-vectors only).
        child_index: Dict[str, Dict[Tuple, List[Tuple]]] = {}
        for c in children:
            child_key = (sigma, c, P)
            self._depend(("tree", child_key), ("hedge", key))
            index: Dict[Tuple, List[Tuple]] = {}
            for tau in self.tree_vals[child_key]:
                ells = tuple(ell for (ell, _r) in tau)
                index.setdefault(ells, []).append(tau)
            child_index[c] = index

        # Seed: every start vector, identity pairs.  The seed count
        # |Q_A|^m is the paper's |dout|^{2M} factor: guard it before looping
        # so super-polynomial instances fail fast instead of hanging.
        if len(dfa_out.states) ** m > self.max_product_nodes:
            raise BudgetExceededError(
                f"{len(dfa_out.states)}^{m} behavior seeds exceed the "
                f"product budget {self.max_product_nodes} — the instance "
                "sits outside the tractable (fixed C·K) regime"
            )
        entry.nodes.clear()
        entry.edges.clear()
        entry.seeds.clear()
        parents: Dict[Tuple, Optional[Tuple]] = {}
        frontier: deque = deque()
        for combo in itertools.product(sorted(dfa_out.states, key=repr), repeat=m):
            node = (dfa_in.initial, tuple((x, x) for x in combo))
            parents[node] = None
            frontier.append(node)
        entry.nodes.update(parents)
        entry.seeds.update(parents)

        grew = False

        def note_accept(node: Tuple) -> None:
            nonlocal grew
            d, pairs = node
            if d not in dfa_in.finals:
                return
            if pairs not in entry.accepted:
                # Materialize the witness word now: it references only
                # configurations that already exist (well-foundedness).
                word: List[Tuple[str, Tuple]] = []
                back = node
                while True:
                    step = parents[back]
                    if step is None:
                        break
                    back, c, tau = step
                    word.append((c, tau))
                word.reverse()
                entry.accepted[pairs] = tuple(word)
                grew = True

        for node in list(frontier):
            note_accept(node)
        while frontier:
            node = frontier.popleft()
            d, pairs = node
            currents = tuple(current for (_start, current) in pairs)
            for c in children:
                d2 = dfa_in.transitions.get((d, c))
                if d2 is None or d2 not in useful_in:
                    continue
                for tau in child_index[c].get(currents, ()):
                    new_pairs = tuple(
                        (slot[0], r) for slot, (_ell, r) in zip(pairs, tau)
                    )
                    successor = (d2, new_pairs)
                    entry.edges.append((node, c, tau, successor))
                    if successor not in parents:
                        parents[successor] = (node, c, tau)
                        entry.nodes.add(successor)
                        if len(parents) > self.max_product_nodes:
                            raise BudgetExceededError(
                                "hedge product exceeded "
                                f"{self.max_product_nodes} nodes"
                            )
                        note_accept(successor)
                        frontier.append(successor)
        self.work += len(parents)
        return grew

    # ------------------------------------------------------------------
    # Witness extraction (Corollary 38)
    # ------------------------------------------------------------------
    def hedge_witness(
        self, key: TupleKey, pi: Tuple[Slot, ...]
    ) -> Tuple[Tuple[str, Tuple[Slot, ...]], ...]:
        """The child word (with per-child τ) realizing π."""
        return self.hedge_vals[key].accepted[pi]

    def build_tree(self, sigma: str, b: str, P: Tuple[str, ...], tau) -> Tree:
        """A concrete input tree realizing configuration (σ, b, P, τ)."""
        pi = self.tree_vals[(sigma, b, P)][tau]
        deferred = self.deferred_tuple(P, b)
        return Tree(b, self.build_hedge(sigma, b, deferred, pi))

    def build_hedge(
        self, sigma: str, a: str, P: Tuple[str, ...], pi
    ) -> List[Tree]:
        children: List[Tree] = []
        for c, tau in self.hedge_witness((sigma, a, P), pi):
            children.append(self.build_tree(sigma, c, P, tau))
        return children


def _chain_top_level(
    dfa: DFA, segments, pi: Tuple[Slot, ...]
) -> Optional[object]:
    """Final DFA state of the output children word of an rhs node, for a
    given hedge behavior π (the paper's step (3) chaining); ``None`` when π
    is inconsistent with the segment chaining."""
    x = dfa.run(segments[0], start=dfa.initial)
    for j, (slot_start, slot_end) in enumerate(pi):
        if slot_start != x:
            return None
        x = dfa.run(segments[j + 1], start=slot_end)
    return x


def typecheck_forward(
    transducer: TreeTransducer,
    din: DTD,
    dout: DTD,
    max_tuple: Optional[int] = None,
    max_product_nodes: int = 500_000,
    want_counterexample: bool = True,
) -> TypecheckResult:
    """Sound and complete typechecking of ``T`` w.r.t. DTDs (Theorem 15).

    ``max_tuple`` defaults to ``C·K`` from Proposition 16 when the transducer
    lies in some ``T^{C,K}_trac``; for transducers with unbounded deletion
    path width pass an explicit budget to run the engine as a (possibly
    exponential) complete procedure — :class:`BudgetExceededError` signals
    the blow-up.
    """
    if transducer.uses_calls():
        from repro.xpath.compile import compile_calls

        transducer = compile_calls(transducer)

    analysis = analyze(transducer)
    if max_tuple is None:
        if analysis.deletion_path_width is None:
            raise ClassViolationError(
                "transducer has unbounded deletion path width (not in any "
                "T^{C,K}_trac); pass max_tuple to run the general engine"
            )
        max_tuple = max(1, analysis.copying_width * analysis.deletion_path_width)

    stats = {
        "algorithm": "forward (Lemma 14)",
        "copying_width": analysis.copying_width,
        "deletion_path_width": analysis.deletion_path_width,
        "max_tuple": max_tuple,
    }

    # Empty input language: vacuously typechecks.
    if din.is_empty():
        return TypecheckResult(
            True, "forward", reason="input schema is empty", stats=stats
        )

    # Root-level checks.  The minimal witness tree is only built on demand:
    # its explicit form can be huge (it is shared internally, but callers
    # may traverse it), and passing instances never need it.
    root_rule = transducer.rules.get((transducer.initial, din.start))
    if root_rule is None:
        witness = minimal_tree(din)
        assert witness is not None
        return TypecheckResult(
            False,
            "forward",
            counterexample=witness,
            output=None,
            reason="no initial rule: the translation is empty",
            stats=stats,
        )
    if len(root_rule) != 1 or not isinstance(root_rule[0], RhsSym):
        raise ClassViolationError(
            "the rule for the input root symbol must produce a single "
            "Σ-rooted tree (Definition 5)"
        )
    root_out = root_rule[0]
    if root_out.label != dout.start:
        witness = minimal_tree(din)
        assert witness is not None
        return TypecheckResult(
            False,
            "forward",
            counterexample=witness,
            output=transducer.apply(witness),
            reason=(
                f"output root is {root_out.label!r}, "
                f"output schema starts with {dout.start!r}"
            ),
            stats=stats,
        )

    engine = ForwardEngine(transducer, din, dout, max_tuple, max_product_nodes)
    pairs = reachable_pairs(transducer, din)
    checks: List[Tuple[Pair, Tuple[int, ...], str, Tuple, Tuple[str, ...], TupleKey]] = []
    for (q, a) in pairs:
        rhs = transducer.rules.get((q, a))
        if rhs is None:
            continue
        for path, node in iter_rhs_nodes(rhs):
            if not isinstance(node, RhsSym):
                continue
            segments = top_decomposition(node.children)
            P = top_states(node.children)
            key = engine.request_hedge(node.label, a, P)
            checks.append(((q, a), path, node.label, segments, P, key))

    engine.run()
    stats["product_nodes"] = engine.work
    stats["reachable_pairs"] = len(pairs)

    violations: List[Violation] = []
    for pair, path, sigma, segments, P, key in checks:
        dfa = engine.out_dfa(sigma)
        entry = engine.hedge_vals[key]
        for pi in entry.accepted:
            final = _chain_top_level(dfa, segments, pi)
            if final is not None and final not in dfa.finals:
                violations.append(Violation(pair, path, sigma, pi, final))
                break  # one violating π per rhs node suffices

    stats["violations"] = len(violations)
    if not violations:
        return TypecheckResult(True, "forward", stats=stats)

    result = TypecheckResult(
        False,
        "forward",
        reason=_describe(violations[0]),
        stats=stats,
    )
    if want_counterexample:
        violation = violations[0]
        (q, a) = violation.pair
        deferred_key = (violation.sigma, a, _pi_states(transducer, q, a, violation.rhs_path))
        subtree_children = engine.build_hedge(
            violation.sigma, a, deferred_key[2], violation.pi
        )
        subtree = Tree(a, subtree_children)
        context, hole = context_for(violation.pair, pairs, din)
        counterexample = context.replace(hole, subtree)
        result.counterexample = counterexample
        result.output = transducer.apply(counterexample)
    return result


def _pi_states(transducer, q, a, path) -> Tuple[str, ...]:
    from repro.transducers.rhs import node_at

    node = node_at(transducer.rules[(q, a)], path)
    assert isinstance(node, RhsSym)
    return top_states(node.children)


def _describe(violation: Violation) -> str:
    q, a = violation.pair
    return (
        f"children of a {violation.sigma!r}-node produced by rhs({q!r}, {a!r}) "
        f"at {violation.rhs_path} can violate dout({violation.sigma!r})"
    )
