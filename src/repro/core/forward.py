"""The Lemma 14 typechecking engine (Theorem 15), demand-driven.

The paper's counterexample automaton guesses, for every input node, up to
``M = C·K`` triples ``(transducer state, A-state ℓ, A-state r)`` asserting
"the output hedge this node contributes in that state takes the output
content-model DFA from ``ℓ`` to ``r``", and defers their verification down
the tree.  Its emptiness check therefore computes exactly which *tuples of
behaviors* are realizable.  This module computes those tuples directly by a
demand-driven least fixpoint over two mutually recursive tables (per output
symbol σ with content DFA ``A = dout(σ)``):

``tree[(σ, b, P)]``
    the set of tuples ``τ = ((ℓ₁,r₁),…,(ℓ_m,r_m))`` such that some tree
    ``t ∈ L(din, b)`` satisfies: for all ``i``, ``top(T^{P_i}(t))`` takes
    ``A`` from ``ℓ_i`` to ``r_i`` (one tree realizes all components jointly);

``hedge[(σ, a, P)]``
    the analogous slot-pair tuples ``π`` realizable by hedges
    ``t₁⋯t_n`` with ``top(t₁)⋯top(t_n) ∈ L(din(a))``, each ``t_j`` valid.

``hedge`` is evaluated by a product BFS (content DFA × one ``A``-state per
slot) whose transitions consume ``tree`` tuples of the children; ``tree`` is
assembled from ``hedge`` of the deferred tuple ``P'`` by chaining the rhs
top-level segments through ``A`` (the paper's step (4)).  The typechecking
condition itself is Section 5's formulation, valid for all DTD inputs:
for every reachable pair ``(q, a)`` and rhs node ``u`` with label σ,
``L_{q,a,u} ⊆ L(dout(σ))`` — checked on the same product (step (3)).

Tuple lengths never exceed ``C·K`` for transducers in ``T^{C,K}_trac``
(Lemma 14's counting argument), which bounds the tables polynomially for
fixed ``C·K``; the engine enforces the bound and reports a clean
:class:`~repro.errors.BudgetExceededError` when an unrestricted transducer
blows up — that is the paper's intractability frontier showing itself.
"""

from __future__ import annotations

import itertools
import time
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import BudgetExceededError, ClassViolationError
from repro.kernel.product import ProductBFS
from repro.obs import trace as _trace
from repro.util import lru_get, lru_store
from repro.kernel.serialize import HedgeDecoder
from repro.schemas.dtd import DTD
from repro.strings.dfa import DFA
from repro.transducers.analysis import analyze
from repro.transducers.rhs import RhsSym, iter_rhs_nodes, top_decomposition, top_states
from repro.transducers.transducer import TreeTransducer
from repro.trees.dag import DagHedge, DagTree
from repro.trees.generate import minimal_tree
from repro.trees.tree import Tree
from repro.core.problem import TypecheckResult
from repro.core.reachability import Pair, context_for, reachable_pairs


def _table_cache_metric(outcome: str) -> None:
    """Count a per-transducer table-cache probe under the registry's
    per-engine label (plus the legacy PR 8 name, kept for one release)."""
    from repro.engines import get_engine

    get_engine('forward').record_table_cache(outcome)

Slot = Tuple[object, object]  # (A-state, A-state)
TupleKey = Tuple[str, str, Tuple[str, ...]]  # (σ, input symbol, P)

#: How many per-transducer table snapshots a ForwardSchema retains (LRU).
TRANSDUCER_TABLE_LIMIT = 64


def canonical_cell_key(
    sigma: Optional[str], symbol: str, P: Tuple[str, ...], use_kernel: bool
) -> TupleKey:
    """The one canonicalization of fixpoint cell keys.

    Shared by :meth:`ForwardEngine.key_for` and :func:`forward_check_keys`
    — the shard partitioner must produce exactly the keys the root-check
    scan will look up, so the rule lives in one place.
    """
    if not P and use_kernel:
        return (None, symbol, P)
    return (sigma, symbol, P)


def input_dfa_useful(din: DTD, a: str, cache: Dict[str, Tuple]) -> Tuple:
    """The input content DFA of ``a`` with its useful-state set (pruning
    the completion sink keeps the key fan-out at the *live* alphabet).

    ``cache`` is the owning schema context's per-symbol memo.
    """
    cached = cache.get(a)
    if cached is None:
        dfa_in = din.content_dfa(a)
        useful = dfa_in.to_nfa().useful_states()
        cached = cache[a] = (dfa_in, useful)
    return cached


def input_kernel_info(
    din: DTD,
    productive: frozenset,
    a: str,
    kern_cache: Dict[str, Tuple],
    useful_cache: Dict[str, Tuple],
) -> Tuple:
    """Interned input content DFA of ``a`` with its useful-state mask and
    the usable child symbols as ``(symbol, symbol_index)`` pairs.

    The one construction behind both engines' input-side compilation —
    :class:`ForwardSchema` and :class:`~repro.backward.BackwardSchema`
    delegate here, so the shape cached under the kernel-level ``aux``
    memo (keyed ``("forward_in", productive)``, shared across schema
    contexts via the DTD-level DFA cache) has a single author.
    """
    cached = kern_cache.get(a)
    if cached is None:
        dfa_in, useful = input_dfa_useful(din, a, useful_cache)
        idfa = dfa_in.kernel()
        aux_key = ("forward_in", productive)
        cached = idfa.aux.get(aux_key)
        if cached is None:
            useful_mask = idfa.states.mask(useful)
            children = sorted(
                {
                    c
                    for (state, c), target in dfa_in.transitions.items()
                    if c in productive and state in useful and target in useful
                },
                key=repr,
            )
            child_syms = tuple((c, idfa.symbols.index(c)) for c in children)
            cached = (idfa, useful_mask, child_syms)
            idfa.aux[aux_key] = cached
        kern_cache[a] = cached
    return cached


@dataclass(frozen=True)
class Violation:
    """A failing local inclusion ``L_{q,a,u} ⊄ dout(σ)``."""

    pair: Pair
    rhs_path: Tuple[int, ...]
    sigma: str
    pi: Tuple[Slot, ...]
    bad_state: object


class HedgeEntry:
    """Fixpoint cell for a ``hedge`` key, including the product graph.

    ``accepted[π]`` stores the witness child word ``[(c, τ), …]``,
    materialized the moment π is first derived — witnesses therefore only
    reference configurations recorded strictly earlier, which keeps the
    recursive counterexample construction well-founded.

    The kernel path keeps the product graph in interned-int form — nodes
    are flat int tuples ``(d, ℓ₁, r₁, …, ℓ_m, r_m)`` living inside a
    *persistent* :class:`~repro.kernel.product.ProductBFS` engine, so
    re-evaluations only propagate child behaviors added since the last
    round instead of re-running the whole BFS.  The seed's object-level
    ``nodes`` / ``edges`` / ``seeds`` views are decoded lazily through
    properties — only the counterexample-NTA export ever reads those, so
    typechecking itself never pays the decode.

    Entries are **closure-free** and pickle whole: the decode mapping is a
    :class:`~repro.kernel.serialize.HedgeDecoder` holding the two state
    interners as data (the seed captured them in closures, which is why
    shared ProductBFS cells used to be rebuilt per process).  Interners
    assign indices deterministically, so a pickled cell's int tables remain
    valid against the equal automata any other process compiles — the basis
    of both the per-transducer table cache and the service's shard fan-out.
    """

    __slots__ = (
        "accepted",
        "int_accepted",
        "int_accepted_list",
        "int_edges",
        "int_seeds",
        "engine",
        "by_currents",
        "consumed",
        "child_keys",
        "decoder",
        "_nodes",
        "_edges",
        "_seeds",
    )

    def __init__(self) -> None:
        self.accepted: Dict[Tuple[Slot, ...], Tuple[Tuple[str, Tuple], ...]] = {}
        # Kernel state: interned accepted π (dict + insertion-order list for
        # delta slicing by dependent tree cells), accumulated edge list,
        # seeds, the persistent BFS engine, the currents-vector node index,
        # and per-child-key counts of already-propagated τ entries.
        self.int_accepted: Dict[Tuple[int, ...], Tuple[Slot, ...]] = {}
        self.int_accepted_list: List[Tuple[Tuple[int, ...], Tuple[Slot, ...]]] = []
        self.int_edges: List[Tuple] = []  # (src, c, τ_flat, dst)
        self.int_seeds: Set[Tuple[int, ...]] = set()
        self.engine = None  # ProductBFS, created at first kernel evaluation
        self.by_currents: Dict[Tuple[int, ...], List[Tuple[int, ...]]] = {}
        self.consumed: Dict[TupleKey, int] = {}
        self.child_keys: Tuple[TupleKey, ...] = ()
        self.decoder = None  # HedgeDecoder on the kernel path
        self._nodes: Optional[Set[Tuple]] = None
        self._edges: Optional[List[Tuple]] = None
        self._seeds: Optional[Set[Tuple]] = None

    def __getstate__(self):
        # The lazily decoded views are pure caches — drop them from the
        # pickle so blobs stay lean and deterministic.
        return tuple(
            None if name in ("_nodes", "_edges", "_seeds") and self.decoder is not None
            else getattr(self, name)
            for name in self.__slots__
        )

    def __setstate__(self, state) -> None:
        for name, value in zip(self.__slots__, state):
            setattr(self, name, value)

    def reset_object(self) -> None:
        """Start an object-path evaluation: direct object containers."""
        self.decoder = None
        self._nodes = set()
        self._edges = []
        self._seeds = set()

    @property
    def nodes(self) -> Set[Tuple]:
        """Product nodes ``(content state, π)`` in object form."""
        if self.decoder is None:
            return self._nodes if self._nodes is not None else set()
        if self._nodes is None:
            decode = self.decoder.node
            self._nodes = {decode(node) for node in self.engine.parents}
        return self._nodes

    @property
    def edges(self) -> List[Tuple]:
        """Product edges ``(src, c, τ, dst)`` in object form."""
        if self.decoder is None:
            return self._edges if self._edges is not None else []
        if self._edges is None:
            decode_node = self.decoder.node
            decode_tau = self.decoder.slots
            self._edges = [
                (decode_node(src), c, decode_tau(tau), decode_node(dst))
                for (src, c, tau, dst) in self.int_edges
            ]
        return self._edges

    @property
    def seeds(self) -> Set[Tuple]:
        """Seed nodes (identity slot pairs) in object form."""
        if self.decoder is None:
            return self._seeds if self._seeds is not None else set()
        if self._seeds is None:
            decode = self.decoder.node
            self._seeds = {decode(node) for node in self.int_seeds}
        return self._seeds


class ForwardSchema:
    """Per-``(din, dout)`` compiled artifacts of the forward engine.

    Everything Lemma 14 derives from the *schemas alone* lives here, so a
    warm :class:`~repro.core.session.Session` can compile it once and share
    it across every transducer checked against the same pair:

    * the productive-symbol set and the reachability word/usable caches
      (:func:`repro.core.reachability.reachable_pairs`);
    * completed output content DFAs (delegated to the DTD-level caches) and
      the universal DFAs backing σ-independent cells;
    * interned input content DFAs with useful-state masks and live child
      symbols;
    * the *shared* fixpoint cells with an empty behavior tuple — their
      least fixpoint mentions no transducer state, so the persistent
      :class:`~repro.kernel.product.ProductBFS` graphs inside them are
      reusable across engines (kernel path only; the object baseline stays
      per-engine and per-σ, faithful to the seed).

    Standalone :func:`typecheck_forward` calls build a private instance, so
    one-shot behavior is unchanged.
    """

    def __init__(self, din: DTD, dout: DTD) -> None:
        self.din = din
        self.dout = dout
        self.productive = din.productive_symbols()
        self.base_out_alphabet = frozenset(din.alphabet | dout.alphabet)
        # Reachability caches (schema-only, see core.reachability).
        self.usable_cache: Dict[str, frozenset] = {}
        self.word_cache: Dict[Tuple[str, str], Tuple[str, ...]] = {}
        # Universal output DFAs for σ-independent cells, one per alphabet.
        self._universal: Dict[frozenset, DFA] = {}
        # Input content DFA caches (kernel and object forms).
        self._in_kern: Dict[str, Tuple] = {}
        self._in_useful: Dict[str, Tuple[DFA, frozenset]] = {}
        # Shared σ-independent (empty-P) fixpoint cells:
        # hedge key -> HedgeEntry; tree key -> (vals, int, order, index).
        self.shared_hedge: Dict[TupleKey, HedgeEntry] = {}
        self.shared_tree: Dict[TupleKey, Tuple[Dict, Dict, List, Dict]] = {}
        # Per-*transducer* fixpoint tables (kernel path): transducer
        # content hash -> the complete tables of a successful run, so a
        # repeated identical query skips the fixpoint entirely.  Bounded
        # LRU; entries are complete least fixpoints and stay valid even
        # after reset_shared() (they were snapshotted post-convergence).
        self.transducer_tables: "OrderedDict[str, Dict[str, object]]" = OrderedDict()
        self.transducer_table_limit = TRANSDUCER_TABLE_LIMIT
        # Measured per-key shard costs of previous sharded runs
        # (transducer content hash -> {check key: attributed seconds}).
        # ``planner="profile"`` plans repeated pairs on these instead of
        # the n_out^m model; see Session.typecheck_sharded.  The version
        # counter bumps on every recording (including re-measurements of
        # a resident profile) for the blob-publish fingerprint.
        self.shard_profiles: "OrderedDict[str, Dict[TupleKey, float]]" = OrderedDict()
        self.shard_profile_version = 0
        self.compiled = False

    def universal_dfa(self, alphabet: frozenset) -> DFA:
        dfa = self._universal.get(alphabet)
        if dfa is None:
            dfa = DFA.universal(alphabet)
            self._universal[alphabet] = dfa
        return dfa

    def out_dfa(self, sigma: Optional[str], out_alphabet: frozenset) -> DFA:
        """The completed output content DFA of σ (universal for ``None``)."""
        if sigma is None:
            # σ-independent cells (empty behavior tuple) never consult the
            # output DFA; a universal one keeps the code paths total.
            return self.universal_dfa(out_alphabet)
        return self.dout.content_dfa_complete(sigma, out_alphabet)

    def in_kernel_info(self, a: str):
        """Interned input content DFA info (see :func:`input_kernel_info`;
        the kernel-level memo survives across schema contexts)."""
        return input_kernel_info(
            self.din, self.productive, a, self._in_kern, self._in_useful
        )

    def in_dfa_useful(self, a: str):
        """The input content DFA of ``a`` with its useful-state set."""
        return input_dfa_useful(self.din, a, self._in_useful)

    def cached_tables(self, table_key: str) -> Optional[Dict[str, object]]:
        """The complete forward tables of a previous run of an equal
        transducer, or ``None`` (LRU-touched on hit)."""
        return lru_get(self.transducer_tables, table_key)

    def store_tables(self, table_key: str, tables: Dict[str, object]) -> None:
        """Retain a successful run's tables under the transducer's hash."""
        lru_store(self.transducer_tables, table_key, tables,
                  self.transducer_table_limit)

    def shard_profile(self, table_key: str) -> Optional[Dict[TupleKey, float]]:
        """The measured per-key costs of a previous sharded run of an
        equal transducer, or ``None`` (LRU-touched on hit)."""
        return lru_get(self.shard_profiles, table_key)

    def record_shard_profile(
        self, table_key: str, profile: Dict[TupleKey, float]
    ) -> None:
        """Retain the measured per-key costs of a sharded run (LRU)."""
        lru_store(self.shard_profiles, table_key, profile,
                  self.transducer_table_limit)
        # Monotone version stamp: re-measuring an existing profile keeps
        # len() constant, so the artifact-publish fingerprint reads this
        # counter instead (see repro.cache._artifact_state).
        self.shard_profile_version += 1

    def reset_shared(self) -> None:
        """Drop the shared fixpoint cells (they rebuild on next use).

        Called when an engine aborts mid-fixpoint (budget exceeded,
        interrupt): the delta counters inside a shared cell may then be
        ahead of the edges actually pushed, and reusing such a cell would
        silently under-approximate the fixpoint.  The cells are cheap to
        rebuild; every other artifact in the schema context is append-only
        and stays valid.
        """
        self.shared_hedge.clear()
        self.shared_tree.clear()

    def warm(self) -> "ForwardSchema":
        """Eagerly compile every schema-derived artifact.

        After this, typechecking a transducer whose alphabet stays within
        ``din ∪ dout`` performs no schema-side compilation at all: content
        DFAs, completions, interned kernels and useful-state masks are all
        cache hits.
        """
        if self.compiled:
            return self
        from repro.kernel.serialize import warm_kernels

        automata = []
        for a in sorted(self.din.alphabet, key=repr):
            self.din.content_nfa(a)
            automata.append(self.din.content_dfa(a))
            self.in_kernel_info(a)
        out_alpha = self.base_out_alphabet
        automata.append(self.universal_dfa(out_alpha))
        for sigma in sorted(self.dout.alphabet, key=repr):
            automata.append(self.dout.content_dfa_complete(sigma, out_alpha))
        warm_kernels(automata)
        self.compiled = True
        return self


class ForwardEngine:
    """Fixpoint engine shared by Theorem 15 typechecking, counterexample
    generation (Cor. 38) and the counterexample-NTA export (Cor. 39)."""

    def __init__(
        self,
        transducer: TreeTransducer,
        din: DTD,
        dout: DTD,
        max_tuple: Optional[int] = None,
        max_product_nodes: int = 500_000,
        use_kernel: bool = True,
        schema: Optional[ForwardSchema] = None,
    ) -> None:
        if schema is None:
            schema = ForwardSchema(din, dout)
        elif schema.din is not din or schema.dout is not dout:
            raise ValueError(
                "schema context was compiled for different DTD objects"
            )
        self.transducer = transducer
        self.din = din
        self.dout = dout
        self.schema = schema
        self.out_alphabet = frozenset(transducer.alphabet | dout.alphabet)
        self.productive = schema.productive
        self.max_tuple = max_tuple
        self.max_product_nodes = max_product_nodes
        self.use_kernel = use_kernel
        # Shared empty-P cells apply on the kernel path only: the object
        # baseline keeps the seed's per-σ keys and per-engine state.
        self._shared = schema if use_kernel else None
        self.work = 0

        self._out_dfa: Dict[str, DFA] = {}
        self._decomp: Dict[Tuple[str, str], Tuple[Tuple[Tuple[str, ...], ...], Tuple[str, ...]]] = {}
        # Per-(σ, state, b) segment-run maps (σ depends on the transducer's
        # rhs labels, so these stay per-engine).
        self._seg: Dict[Tuple[str, str, str], Tuple[List[List[int]], int]] = {}

        self.tree_vals: Dict[TupleKey, Dict[Tuple[Slot, ...], Tuple[Slot, ...]]] = {}
        # tree_vals[key][τ] = witness π in hedge((σ, b, P')).
        self.hedge_vals: Dict[TupleKey, HedgeEntry] = {}
        # Interned mirror of tree_vals: flat int-tuple τ -> flat int-tuple π,
        # with an insertion-order list (for delta propagation into hedge
        # cells) and an index by entry-state vector ℓ₁…ℓ_m (for BFS lookups).
        self._tree_int: Dict[TupleKey, Dict[Tuple[int, ...], Tuple[int, ...]]] = {}
        self._tree_order: Dict[TupleKey, List[Tuple[int, ...]]] = {}
        self._tree_index: Dict[TupleKey, Dict[Tuple[int, ...], List[Tuple[int, ...]]]] = {}
        # How many accepted π of the supplying hedge cell each tree cell has
        # already assembled (the tree-side delta counter).
        self._tree_consumed: Dict[TupleKey, int] = {}
        self._dependents: Dict[Tuple[str, TupleKey], Set[Tuple[str, TupleKey]]] = {}
        self._dirty: deque = deque()
        self._dirty_set: Set[Tuple[str, TupleKey]] = set()
        self._registered: Set[Tuple[str, TupleKey]] = set()

    # ------------------------------------------------------------------
    # Cached views
    # ------------------------------------------------------------------
    def out_dfa(self, sigma: Optional[str]) -> DFA:
        dfa = self._out_dfa.get(sigma)
        if dfa is None:
            dfa = self.schema.out_dfa(sigma, self.out_alphabet)
            self._out_dfa[sigma] = dfa
        return dfa

    def key_for(self, sigma: str, symbol: str, P: Tuple[str, ...]) -> TupleKey:
        """Canonical cell key for ``(σ, symbol, P)``.

        A cell with an empty behavior tuple carries no σ-specific
        information — its only content is "does a valid tree/hedge exist" —
        so the kernel shares it across all output symbols (σ → ``None``).
        For non-deleting transducers every cell below the root checks has
        ``P = ()``, which collapses the (σ, input symbol) product to a
        single chain.  The object path keeps the seed's per-σ keys: it is
        the faithful baseline, not an optimized engine.
        """
        return canonical_cell_key(sigma, symbol, P, self.use_kernel)

    def decomposition(
        self, state: str, symbol: str
    ) -> Tuple[Tuple[Tuple[str, ...], ...], Tuple[str, ...]]:
        """Segments/deferred-states of ``top(rhs(state, symbol))``; a missing
        rule contributes the empty translation (one empty segment)."""
        key = (state, symbol)
        cached = self._decomp.get(key)
        if cached is None:
            rhs = self.transducer.rules.get(key)
            if rhs is None:
                cached = (((),), ())
            else:
                cached = (top_decomposition(rhs), top_states(rhs))
            self._decomp[key] = cached
        return cached

    def deferred_tuple(self, P: Tuple[str, ...], symbol: str) -> Tuple[str, ...]:
        """The concatenated deferred tuple P' for processing ``symbol``."""
        out: List[str] = []
        for state in P:
            out.extend(self.decomposition(state, symbol)[1])
        result = tuple(out)
        if self.max_tuple is not None and len(result) > self.max_tuple:
            raise BudgetExceededError(
                f"behavior tuple grew to {len(result)} > {self.max_tuple} "
                "(transducer outside the configured T_trac class)"
            )
        return result

    # ------------------------------------------------------------------
    # Fixpoint plumbing
    # ------------------------------------------------------------------
    def _register(self, kind: str, key: TupleKey) -> None:
        node = (kind, key)
        if node in self._registered:
            return
        self._registered.add(node)
        # Cells with an empty behavior tuple mention no transducer state:
        # their least fixpoint is a function of the schemas alone, so on the
        # kernel path they live in the schema context and are shared (with
        # their persistent ProductBFS graphs) across engines.
        shared = self._shared if not key[2] else None
        if kind == "tree":
            if shared is not None:
                cell = shared.shared_tree.get(key)
                if cell is None:
                    cell = shared.shared_tree[key] = ({}, {}, [], {})
                vals, int_table, order, index = cell
            elif key in self.tree_vals:
                # Adopt a cell pre-installed by the incremental warm start
                # (incremental_forward_tables): already at its fixpoint.
                vals, int_table, order, index = (
                    self.tree_vals[key],
                    self._tree_int[key],
                    self._tree_order[key],
                    self._tree_index[key],
                )
            else:
                vals, int_table, order, index = ({}, {}, [], {})
            self.tree_vals[key] = vals
            self._tree_int[key] = int_table
            self._tree_order[key] = order
            self._tree_index[key] = index
        else:
            if shared is not None:
                entry = shared.shared_hedge.get(key)
                if entry is None:
                    entry = shared.shared_hedge[key] = HedgeEntry()
            else:
                entry = self.hedge_vals.get(key)
                if entry is None:
                    entry = HedgeEntry()
            self.hedge_vals[key] = entry
        self._dirty.append(node)
        self._dirty_set.add(node)

    def _depend(self, read: Tuple[str, TupleKey], reader: Tuple[str, TupleKey]) -> None:
        self._register(*read)
        self._dependents.setdefault(read, set()).add(reader)

    def request_hedge(self, sigma: str, symbol: str, P: Tuple[str, ...]) -> TupleKey:
        key = self.key_for(sigma, symbol, P)
        self._register("hedge", key)
        return key

    def run(self) -> None:
        """Run the chaotic iteration to the least fixpoint."""
        dirty = self._dirty
        dirty_set = self._dirty_set
        while dirty:
            node = dirty.popleft()
            dirty_set.discard(node)
            kind, key = node
            grew = (
                self._eval_tree(key) if kind == "tree" else self._eval_hedge(key)
            )
            if grew:
                for dependent in self._dependents.get(node, ()):
                    if dependent not in dirty_set:
                        dirty.append(dependent)
                        dirty_set.add(dependent)

    # ------------------------------------------------------------------
    # Evaluation — kernel path (interned ints) with the seed object path
    # retained as the differential-testing baseline (``use_kernel=False``).
    # ------------------------------------------------------------------
    def _eval_tree(self, key: TupleKey) -> bool:
        if self.use_kernel:
            return self._eval_tree_kernel(key)
        return self._eval_tree_object(key)

    def _eval_hedge(self, key: TupleKey) -> bool:
        if self.use_kernel:
            return self._eval_hedge_kernel(key)
        return self._eval_hedge_object(key)

    # -- kernel caches --------------------------------------------------
    def _out_kernel(self, sigma: str):
        """Interned view of the (complete) output content DFA of σ."""
        return self.out_dfa(sigma).kernel()

    def _in_kernel_info(self, a: str):
        """Interned input content DFA info, compiled once per schema pair."""
        return self.schema.in_kernel_info(a)

    def _segment_maps(self, sigma: str, state: str, b: str):
        """Per-segment end-state arrays: ``maps[j][x]`` is the output DFA
        state after reading segment ``j`` of ``top(rhs(state, b))`` from
        ``x``.  Computed once per (σ, state, b) — the object path re-runs
        the words for every (π, start) combination instead."""
        key = (sigma, state, b)
        cached = self._seg.get(key)
        if cached is None:
            segments, defers = self.decomposition(state, b)
            idfa = self._out_kernel(sigma)
            maps: List[List[int]] = []
            for segment in segments:
                word = idfa.intern_word(segment)
                assert word is not None, "output DFA is complete over Σ_out"
                maps.append([idfa.run(word, start=x) for x in range(idfa.n_states)])
            cached = (maps, len(defers))
            self._seg[key] = cached
        return cached

    @staticmethod
    def _decode_slots(idfa, flat: Tuple[int, ...]) -> Tuple[Slot, ...]:
        """Flat int tuple ``(ℓ₁, r₁, …)`` back to object slot pairs."""
        value = idfa.states.value
        return tuple(
            (value(flat[i]), value(flat[i + 1])) for i in range(0, len(flat), 2)
        )

    # -- tree cells -----------------------------------------------------
    def _eval_tree_kernel(self, key: TupleKey) -> bool:
        sigma, b, P = key
        if b not in self.productive:
            return False
        deferred = self.deferred_tuple(P, b)
        hedge_key = self.key_for(sigma, b, deferred)
        self._depend(("hedge", hedge_key), ("tree", key))
        entry = self.hedge_vals[hedge_key]
        accepted_list = entry.int_accepted_list
        start = self._tree_consumed.get(key, 0)
        if start >= len(accepted_list):
            return False
        idfa = self._out_kernel(sigma)
        int_table = self._tree_int[key]
        order = self._tree_order[key]
        index = self._tree_index[key]
        table = self.tree_vals[key]
        segdata = [self._segment_maps(sigma, state, b) for state in P]
        n_out = idfa.n_states
        decode_slots = self._decode_slots
        grew = False
        # τ derivation depends only on π and the (static) segment maps, so
        # each accepted π is assembled exactly once, at the delta boundary.
        for pi_flat, pi in accepted_list[start:]:
            for tau_flat in self._assemble_int(segdata, pi_flat, n_out):
                if tau_flat not in int_table:
                    int_table[tau_flat] = pi_flat
                    order.append(tau_flat)
                    index.setdefault(tau_flat[0::2], []).append(tau_flat)
                    table[decode_slots(idfa, tau_flat)] = pi
                    grew = True
        self._tree_consumed[key] = len(accepted_list)
        if len(int_table) > self.max_product_nodes:
            raise BudgetExceededError(
                f"behavior table for {key!r} exceeded "
                f"{self.max_product_nodes} tuples"
            )
        return grew

    @staticmethod
    def _assemble_int(segdata, pi_flat: Tuple[int, ...], n_out: int):
        """Interned step (4): all τ flat tuples derivable from hedge
        behavior ``pi_flat`` by chaining segment maps."""
        per_component: List[List[Tuple[int, int]]] = []
        offset = 0
        for maps, k in segdata:
            slots = pi_flat[2 * offset : 2 * (offset + k)]
            offset += k
            first = maps[0]
            pairs: List[Tuple[int, int]] = []
            for start in range(n_out):
                x = first[start]
                ok = True
                for j in range(k):
                    if slots[2 * j] != x:
                        ok = False
                        break
                    x = maps[j + 1][slots[2 * j + 1]]
                if ok:
                    pairs.append((start, x))
            if not pairs:
                return
            per_component.append(pairs)
        for combo in itertools.product(*per_component):
            yield tuple(v for pair in combo for v in pair)

    def _eval_tree_object(self, key: TupleKey) -> bool:
        sigma, b, P = key
        if b not in self.productive:
            return False
        deferred = self.deferred_tuple(P, b)
        hedge_key = (sigma, b, deferred)
        self._depend(("hedge", hedge_key), ("tree", key))
        entry = self.hedge_vals[hedge_key]
        dfa = self.out_dfa(sigma)
        table = self.tree_vals[key]
        grew = False
        for pi in entry.accepted:
            for tau in self._assemble(P, b, pi, dfa):
                if tau not in table:
                    table[tau] = pi
                    grew = True
        if len(table) > self.max_product_nodes:
            raise BudgetExceededError(
                f"behavior table for {key!r} exceeded "
                f"{self.max_product_nodes} tuples"
            )
        return grew

    def _assemble(
        self,
        P: Tuple[str, ...],
        b: str,
        pi: Tuple[Slot, ...],
        dfa: DFA,
    ):
        """All τ tuples derivable from hedge behavior π by chaining the rhs
        segments through the (complete) output DFA — the paper's step (4)."""
        per_component: List[List[Slot]] = []
        offset = 0
        for state in P:
            segments, defers = self.decomposition(state, b)
            k = len(defers)
            slots = pi[offset : offset + k]
            offset += k
            pairs: List[Slot] = []
            for start in dfa.states:
                x = dfa.run(segments[0], start=start)
                ok = True
                for j in range(k):
                    slot_start, slot_end = slots[j]
                    if slot_start != x:
                        ok = False
                        break
                    x = dfa.run(segments[j + 1], start=slot_end)
                if ok:
                    pairs.append((start, x))
            if not pairs:
                return
            per_component.append(pairs)
        yield from itertools.product(*per_component)

    def _in_dfa_useful(self, a: str):
        """The input content DFA of ``a`` with its useful-state set,
        compiled once per schema pair."""
        return self.schema.in_dfa_useful(a)

    # -- hedge cells ----------------------------------------------------
    def _eval_hedge_kernel(self, key: TupleKey) -> bool:
        sigma, a, P = key
        entry = self.hedge_vals[key]
        if entry.engine is not None:
            # A shared entry may have been created under a different
            # per-call budget; the current engine's budget governs.
            entry.engine.max_nodes = self.max_product_nodes
            # Fast no-op exit: nothing new in any child table since the last
            # evaluation (the chaotic iteration re-enqueues liberally).  A
            # shared entry may predate this engine, in which case a child
            # cell can be unregistered here — fall through to the full pass,
            # which registers the dependencies.
            consumed = entry.consumed
            orders = self._tree_order
            for child_key in entry.child_keys:
                order = orders.get(child_key)
                if order is None or consumed.get(child_key, 0) < len(order):
                    break
            else:
                return False
        idfa_in, useful_mask, child_syms = self._in_kernel_info(a)
        idfa_out = self._out_kernel(sigma)
        m = len(P)
        n_out = idfa_out.n_states

        decode_slots = self._decode_slots
        int_edges = entry.int_edges
        int_accepted = entry.int_accepted
        accepted = entry.accepted
        by_currents = entry.by_currents
        in_table = idfa_in.table
        in_n_symbols = idfa_in.n_symbols
        in_finals = idfa_in.finals_mask
        grew = False
        new_this_eval: Set[Tuple[int, ...]] = set()

        engine = entry.engine
        first_eval = engine is None
        if first_eval:
            # Seed-count guard, as in the object path.
            if n_out ** m > self.max_product_nodes:
                raise BudgetExceededError(
                    f"{n_out}^{m} behavior seeds exceed the "
                    f"product budget {self.max_product_nodes} — the instance "
                    "sits outside the tractable (fixed C·K) regime"
                )
            engine = entry.engine = ProductBFS(
                max_nodes=self.max_product_nodes,
                budget_message="hedge product exceeded {max_nodes} nodes",
            )
            # Closure-free decode descriptor: interners as data, so the
            # whole cell pickles (table cache, shard fan-out).
            entry.decoder = HedgeDecoder(idfa_in.states, idfa_out.states)

        parents = engine.parents
        nodes_before = len(parents)

        def note_accept(node: Tuple[int, ...]) -> bool:
            nonlocal grew
            new_this_eval.add(node)
            by_currents.setdefault(node[2::2], []).append(node)
            if not in_finals >> node[0] & 1:
                return False
            pairs = node[1:]
            if pairs not in int_accepted:
                # Materialize the witness now: it references only
                # configurations that already exist (well-foundedness).
                pi = decode_slots(idfa_out, pairs)
                int_accepted[pairs] = pi
                entry.int_accepted_list.append((pairs, pi))
                accepted[pi] = tuple(
                    (c, decode_slots(idfa_out, tau_flat))
                    for c, tau_flat in engine.path(node)
                )
                grew = True
            return False

        child_data = []
        for c, c_sym in child_syms:
            child_key = self.key_for(sigma, c, P)
            self._depend(("tree", child_key), ("hedge", key))
            child_data.append((c, c_sym, child_key, self._tree_index[child_key]))
        entry.child_keys = tuple(item[2] for item in child_data)

        if first_eval:
            d0 = idfa_in.initial
            for combo in itertools.product(range(n_out), repeat=m):
                node = (d0,) + tuple(v for x in combo for v in (x, x))
                entry.int_seeds.add(node)
                engine.push(node, None, note_accept)

        # Delta pass: push child behaviors added since the last evaluation
        # through the *already-explored* nodes; nodes discovered during this
        # evaluation are skipped here — the drain below expands them against
        # the full tables, so every (node, τ) pair is applied exactly once.
        consumed = entry.consumed
        for c, c_sym, child_key, _index in child_data:
            order = self._tree_order[child_key]
            start = consumed.get(child_key, 0)
            if start >= len(order):
                continue
            consumed[child_key] = len(order)
            for tau_flat in order[start:]:
                ells = tau_flat[0::2]
                candidates = by_currents.get(ells)
                if not candidates:
                    continue
                label = (c, tau_flat)
                new_currents = tau_flat[1::2]
                for i in range(len(candidates)):
                    node = candidates[i]
                    if node in new_this_eval:
                        continue
                    d2 = in_table[node[0] * in_n_symbols + c_sym]
                    if d2 < 0 or not useful_mask >> d2 & 1:
                        continue
                    succ = (d2,) + tuple(
                        v for pair in zip(node[1::2], new_currents) for v in pair
                    )
                    int_edges.append((node, c, tau_flat, succ))
                    engine.push(succ, (node, label), note_accept)

        def successors(node: Tuple[int, ...]):
            base = node[0] * in_n_symbols
            starts = node[1::2]
            currents = node[2::2]
            for c, c_sym, _child_key, index in child_data:
                d2 = in_table[base + c_sym]
                if d2 < 0 or not useful_mask >> d2 & 1:
                    continue
                for tau_flat in index.get(currents, ()):
                    succ = (d2,) + tuple(
                        v
                        for pair in zip(starts, tau_flat[1::2])
                        for v in pair
                    )
                    int_edges.append((node, c, tau_flat, succ))
                    yield succ, (c, tau_flat)

        engine.drain(successors, note_accept)
        self.work += len(parents) - nodes_before
        # Invalidate the lazily decoded views (the graph may have grown).
        entry._nodes = entry._edges = None
        return grew

    def _eval_hedge_object(self, key: TupleKey) -> bool:
        sigma, a, P = key
        entry = self.hedge_vals[key]
        dfa_in, useful_in = self._in_dfa_useful(a)
        dfa_out = self.out_dfa(sigma)
        m = len(P)

        # Child alphabet: productive symbols on transitions between useful
        # input-DFA states (dead/sink transitions spawn no work).
        children = sorted(
            {
                c
                for (state, c), target in dfa_in.transitions.items()
                if c in self.productive
                and state in useful_in
                and target in useful_in
            },
            key=repr,
        )
        # Index each child's τ table by the required entry-state vector so a
        # BFS node looks up exactly the matching behaviors instead of
        # scanning the whole table (the table is |Q_A|^{2m} in the worst
        # case; the index fans out by r-vectors only).
        child_index: Dict[str, Dict[Tuple, List[Tuple]]] = {}
        for c in children:
            child_key = (sigma, c, P)
            self._depend(("tree", child_key), ("hedge", key))
            index: Dict[Tuple, List[Tuple]] = {}
            for tau in self.tree_vals[child_key]:
                ells = tuple(ell for (ell, _r) in tau)
                index.setdefault(ells, []).append(tau)
            child_index[c] = index

        # Seed: every start vector, identity pairs.  The seed count
        # |Q_A|^m is the paper's |dout|^{2M} factor: guard it before looping
        # so super-polynomial instances fail fast instead of hanging.
        if len(dfa_out.states) ** m > self.max_product_nodes:
            raise BudgetExceededError(
                f"{len(dfa_out.states)}^{m} behavior seeds exceed the "
                f"product budget {self.max_product_nodes} — the instance "
                "sits outside the tractable (fixed C·K) regime"
            )
        entry.reset_object()
        nodes, edges, seeds = entry._nodes, entry._edges, entry._seeds
        parents: Dict[Tuple, Optional[Tuple]] = {}
        frontier: deque = deque()
        for combo in itertools.product(sorted(dfa_out.states, key=repr), repeat=m):
            node = (dfa_in.initial, tuple((x, x) for x in combo))
            parents[node] = None
            frontier.append(node)
        nodes.update(parents)
        seeds.update(parents)

        grew = False

        def note_accept(node: Tuple) -> None:
            nonlocal grew
            d, pairs = node
            if d not in dfa_in.finals:
                return
            if pairs not in entry.accepted:
                # Materialize the witness word now: it references only
                # configurations that already exist (well-foundedness).
                word: List[Tuple[str, Tuple]] = []
                back = node
                while True:
                    step = parents[back]
                    if step is None:
                        break
                    back, c, tau = step
                    word.append((c, tau))
                word.reverse()
                entry.accepted[pairs] = tuple(word)
                grew = True

        for node in list(frontier):
            note_accept(node)
        while frontier:
            node = frontier.popleft()
            d, pairs = node
            currents = tuple(current for (_start, current) in pairs)
            for c in children:
                d2 = dfa_in.transitions.get((d, c))
                if d2 is None or d2 not in useful_in:
                    continue
                for tau in child_index[c].get(currents, ()):
                    new_pairs = tuple(
                        (slot[0], r) for slot, (_ell, r) in zip(pairs, tau)
                    )
                    successor = (d2, new_pairs)
                    edges.append((node, c, tau, successor))
                    if successor not in parents:
                        parents[successor] = (node, c, tau)
                        nodes.add(successor)
                        if len(parents) > self.max_product_nodes:
                            raise BudgetExceededError(
                                "hedge product exceeded "
                                f"{self.max_product_nodes} nodes"
                            )
                        note_accept(successor)
                        frontier.append(successor)
        self.work += len(parents)
        return grew

    # ------------------------------------------------------------------
    # Witness extraction (Corollary 38)
    # ------------------------------------------------------------------
    def hedge_witness(
        self, key: TupleKey, pi: Tuple[Slot, ...]
    ) -> Tuple[Tuple[str, Tuple[Slot, ...]], ...]:
        """The child word (with per-child τ) realizing π."""
        return self.hedge_vals[key].accepted[pi]

    def build_tree(self, sigma: str, b: str, P: Tuple[str, ...], tau) -> Tree:
        """A concrete input tree realizing configuration (σ, b, P, τ)."""
        pi = self.tree_vals[self.key_for(sigma, b, P)][tau]
        deferred = self.deferred_tuple(P, b)
        return Tree(b, self.build_hedge(sigma, b, deferred, pi))

    def build_hedge(
        self, sigma: str, a: str, P: Tuple[str, ...], pi
    ) -> List[Tree]:
        children: List[Tree] = []
        for c, tau in self.hedge_witness(self.key_for(sigma, a, P), pi):
            children.append(self.build_tree(sigma, c, P, tau))
        return children

    def build_dag_tree(
        self, sigma: str, b: str, P: Tuple[str, ...], tau, _memo=None
    ) -> DagTree:
        """The :meth:`build_tree` witness with subtree sharing.

        The construction is a function of the *canonical* cell key and the
        realized tuple alone (empty-``P`` cells canonicalize σ away and
        keep their deferred tuple empty), so one memo entry per
        ``(key, τ)`` makes repeated configurations share a single
        :class:`DagTree` node — a failing copying instance's witness stays
        linear in the fixpoint size instead of exponential in the depth.
        """
        memo: Dict[Tuple, object] = {} if _memo is None else _memo
        key = self.key_for(sigma, b, P)
        mkey = ("t", key, tau)
        cached = memo.get(mkey)
        if cached is None:
            pi = self.tree_vals[key][tau]
            deferred = self.deferred_tuple(P, b)
            cached = DagTree(
                b, self.build_dag_hedge(sigma, b, deferred, pi, memo)
            )
            memo[mkey] = cached
        return cached

    def build_dag_hedge(
        self, sigma: str, a: str, P: Tuple[str, ...], pi, _memo=None
    ) -> DagHedge:
        memo: Dict[Tuple, object] = {} if _memo is None else _memo
        key = self.key_for(sigma, a, P)
        mkey = ("h", key, pi)
        cached = memo.get(mkey)
        if cached is None:
            cached = DagHedge(
                self.build_dag_tree(sigma, c, P, tau, memo)
                for c, tau in self.hedge_witness(key, pi)
            )
            memo[mkey] = cached
        return cached


# ----------------------------------------------------------------------
# Fixpoint tables as data: snapshot / hydrate / shard / merge
# ----------------------------------------------------------------------
# The engine's least fixpoint is an ordinary value: a map from cell keys to
# (closure-free, picklable) cell contents.  These helpers move that value
# around — into the per-transducer table cache, across process boundaries
# for the service's shard fan-out, and back into a fresh engine whose
# ``run()`` is then skipped entirely.


def export_forward_tables(engine: ForwardEngine) -> Dict[str, object]:
    """Snapshot every cell the engine materialized, in picklable form.

    The snapshot shares the live cell objects (hedge entries, tree-cell
    4-tuples) rather than copying: after a converged run they are complete
    least fixpoints and are never mutated again — later engines for other
    transducers re-derive nothing new in them.
    """
    return {
        "hedge": dict(engine.hedge_vals),
        "tree": {
            key: (
                engine.tree_vals[key],
                engine._tree_int[key],
                engine._tree_order[key],
                engine._tree_index[key],
            )
            for key in engine.tree_vals
        },
        "work": engine.work,
    }


def hydrate_forward_tables(engine: ForwardEngine, tables: Dict[str, object]) -> None:
    """Install snapshotted tables into a fresh engine, replacing ``run()``.

    The engine must not have registered any cells yet; after hydration the
    root-check scan and the recursive counterexample construction read the
    tables exactly as they would after a converged ``run()``.  The
    snapshot's accumulated ``work`` carries over so sharded runs report
    the product nodes their workers actually explored (table-cache hits
    reset it to 0 — nothing was computed for *that* call).
    """
    engine.hedge_vals.update(tables["hedge"])
    for key, (vals, int_table, order, index) in tables["tree"].items():
        engine.tree_vals[key] = vals
        engine._tree_int[key] = int_table
        engine._tree_order[key] = order
        engine._tree_index[key] = index
    engine.work = int(tables.get("work", 0))


def forward_check_keys(
    transducer: TreeTransducer,
    din: DTD,
    schema: ForwardSchema,
    use_kernel: bool = True,
) -> List[TupleKey]:
    """The canonical hedge-cell keys of every root check of ``T``.

    This is the unit of shard partitioning: each key's fixpoint (with its
    dependency closure) can be computed independently and the resulting
    cell tables merged — cells are functions of their dependencies alone,
    so per-shard least fixpoints agree wherever closures overlap.
    """
    if transducer.uses_calls():
        from repro.xpath.compile import compile_calls

        transducer = compile_calls(transducer)
    pairs = reachable_pairs(
        transducer, din,
        usable_cache=schema.usable_cache, word_cache=schema.word_cache,
    )
    keys: List[TupleKey] = []
    seen: Set[TupleKey] = set()
    for (q, a) in pairs:
        rhs = transducer.rules.get((q, a))
        if rhs is None:
            continue
        for _path, node in iter_rhs_nodes(rhs):
            if not isinstance(node, RhsSym):
                continue
            P = top_states(node.children)
            key = canonical_cell_key(node.label, a, P, use_kernel)
            if key not in seen:
                seen.add(key)
                keys.append(key)
    return keys


# The shard planner's cost model
# ------------------------------
# A hedge cell ``(σ, a, P)`` explores the product of the input content DFA
# of ``a`` with one copy of the (complete) output content DFA of σ per
# behavior slot: its BFS is seeded with ``n_out^m`` identity vectors, where
# ``n_out`` is the output DFA's state count and ``m = |P|`` — the very
# quantity the engine's seed-count guard compares against
# ``max_product_nodes`` (see ``_eval_hedge_kernel``).  The seed count is
# the dominant *per-key* factor, but a shard does not evaluate its keys in
# isolation: each key's fixpoint pulls in the whole σ-independent
# dependency closure below its input symbol (the shared ``P = ()`` chain
# cells), and a plan that prices those closures at zero systematically
# underloads the shards that have to build them.  ``forward_key_costs``
# therefore charges ``seeds + closure``, with each closure cell's weight
# (its input content DFA size) amortized across every key in the batch
# whose closure contains it — shards that share a closure split its bill.
# ``plan_forward_shards`` LPT-packs the keys into balanced shards —
# replacing the blind round-robin split whose shard wall times were only
# as balanced as the key *order* happened to be.


def forward_key_costs(
    keys: Sequence[TupleKey],
    schema: ForwardSchema,
    out_alphabet: frozenset,
) -> List[float]:
    """Predicted fixpoint cost of each hedge-cell key.

    ``seeds + closure``: the ``n_out^m`` behavior-seed count of the key's
    own product BFS, plus the input-DFA sizes of the σ-independent cells
    in the key's downward dependency closure, each amortized over the
    keys of this batch that share it (see the model note above).

    ``out_alphabet`` is the engine's output alphabet for the transducer
    being sharded (``transducer.alphabet | dout.alphabet``) — the alphabet
    the completed output content DFAs are built over.
    """
    closure_memo: Dict[str, frozenset] = {}

    def closure(a: str) -> frozenset:
        cached = closure_memo.get(a)
        if cached is None:
            seen = {a}
            stack = [a]
            while stack:
                _idfa, _mask, child_syms = schema.in_kernel_info(stack.pop())
                for c, _index in child_syms:
                    if c not in seen:
                        seen.add(c)
                        stack.append(c)
            cached = frozenset(seen)
            closure_memo[a] = cached
        return cached

    closures = [closure(a) for (_sigma, a, _P) in keys]
    refcount: Dict[str, int] = {}
    for symbols in closures:
        for c in symbols:
            refcount[c] = refcount.get(c, 0) + 1
    costs: List[float] = []
    for (sigma, _a, P), symbols in zip(keys, closures):
        if P:
            n_out = len(schema.out_dfa(sigma, out_alphabet).states)
            seeds = float(max(1, n_out) ** len(P))
        else:
            seeds = 0.0
        shared = sum(
            len(schema.in_dfa_useful(c)[0].states) / refcount[c]
            for c in symbols
        )
        costs.append(max(1.0, seeds + shared))
    return costs


def plan_forward_shards(
    keys: Sequence[TupleKey],
    costs: Sequence[int],
    shards: int,
) -> Tuple[List[List[TupleKey]], List[int]]:
    """LPT bin-packing of check keys into ``shards`` balanced partitions.

    Longest-processing-time-first: keys are placed heaviest-first onto the
    currently lightest shard (ties broken by shard index, so the plan is
    deterministic).  Returns ``(partitions, loads)`` — every partition is
    non-empty when ``len(keys) >= shards``, and the loads are the predicted
    per-shard cost sums recorded in the sharded call's stats.
    """
    shards = max(1, min(int(shards), max(1, len(keys))))
    order = sorted(range(len(keys)), key=lambda i: (-costs[i], i))
    partitions: List[List[TupleKey]] = [[] for _ in range(shards)]
    loads = [0] * shards
    for i in order:
        target = min(range(shards), key=lambda b: (loads[b], b))
        partitions[target].append(keys[i])
        loads[target] += costs[i]
    return partitions, loads


def compute_forward_tables(
    transducer: TreeTransducer,
    din: DTD,
    dout: DTD,
    keys: Iterable[TupleKey],
    *,
    max_tuple: Optional[int] = None,
    max_product_nodes: int = 500_000,
    use_kernel: bool = True,
    schema: Optional[ForwardSchema] = None,
) -> Dict[str, object]:
    """One shard of the forward fixpoint: the cells rooted at ``keys``.

    Runs the chaotic iteration over exactly the dependency closure of the
    given hedge-cell keys and snapshots the result.  A service worker calls
    this against its warm session's schema; the parent merges the shards
    with :func:`merge_forward_tables` and finishes via
    ``typecheck_forward(..., tables=merged)``.
    """
    if transducer.uses_calls():
        from repro.xpath.compile import compile_calls

        transducer = compile_calls(transducer)
    if schema is None:
        schema = ForwardSchema(din, dout)
    if max_tuple is None:
        analysis = analyze(transducer)
        if analysis.deletion_path_width is None:
            raise ClassViolationError(
                "transducer has unbounded deletion path width (not in any "
                "T^{C,K}_trac); pass max_tuple to run the general engine"
            )
        max_tuple = max(1, analysis.copying_width * analysis.deletion_path_width)
    engine = ForwardEngine(
        transducer, din, dout, max_tuple, max_product_nodes,
        use_kernel=use_kernel, schema=schema,
    )
    start = time.perf_counter()
    # Keys are evaluated one at a time to their (incremental) fixpoint so
    # each key's wall time can be measured separately: dependency work is
    # attributed to the first key that pulls it in — measured truth, which
    # is exactly what ``planner="profile"`` needs to stop smearing one
    # shard wall time across co-scheduled keys.  The final tables are the
    # same least fixpoint as an all-at-once run (chaotic iteration is
    # confluent; later requests only add cells and re-drain dependents).
    key_elapsed: Dict[TupleKey, float] = {}
    last = start
    with _trace.span("fixpoint", engine="forward") as fix_span:
        try:
            for key in keys:
                engine.request_hedge(*key)
                engine.run()
                now = time.perf_counter()
                key_elapsed[tuple(key)] = now - last
                last = now
        except BaseException:
            schema.reset_shared()
            raise
        fix_span.set(
            keys=len(key_elapsed),
            work=engine.work,
            key_elapsed_s={
                str(key): round(elapsed, 6)
                for key, elapsed in key_elapsed.items()
            },
        )
    tables = export_forward_tables(engine)
    # Shard wall time, measured where the work actually ran (a service
    # worker) — the shard planner's balance is judged on these.
    tables["elapsed_s"] = time.perf_counter() - start
    tables["key_elapsed_s"] = key_elapsed
    return tables


def merge_forward_tables(shards: Iterable[Dict[str, object]]) -> Dict[str, object]:
    """Union shard snapshots into one table set.

    Every shard evaluated its cells to their complete least fixpoint
    (dependencies included), so where closures overlap the cells carry the
    same accepted sets — the merge keeps the first copy and unions at cell
    granularity.  ``work`` accumulates for stats.
    """
    merged: Dict[str, object] = {"hedge": {}, "tree": {}, "work": 0}
    hedge: Dict = merged["hedge"]
    tree: Dict = merged["tree"]
    elapsed: List[float] = []
    key_elapsed: Dict[TupleKey, float] = {}
    for shard in shards:
        merged["work"] = int(merged["work"]) + int(shard.get("work", 0))
        if "elapsed_s" in shard:
            elapsed.append(float(shard["elapsed_s"]))
        key_elapsed.update(shard.get("key_elapsed_s") or {})
        for key, entry in shard["hedge"].items():
            hedge.setdefault(key, entry)
        for key, cell in shard["tree"].items():
            tree.setdefault(key, cell)
    if elapsed:
        merged["shard_elapsed_s"] = elapsed
    if key_elapsed:
        merged["key_elapsed_s"] = key_elapsed
    return merged


def changed_rule_states(
    transducer: TreeTransducer, base: TreeTransducer
) -> Set[str]:
    """States whose rule set differs between two transducers.

    A state counts as changed when it exists in only one of the two, or
    when any ``(state, symbol)`` rule differs by canonical rhs content
    (the same canonicalization :meth:`TreeTransducer.content_hash` uses,
    so call selectors compare by content, not identity).
    """
    from repro.transducers.transducer import _canonical_rhs

    changed: Set[str] = set()
    for state in set(transducer.states) | set(base.states):
        if state not in transducer.states or state not in base.states:
            changed.add(state)
            continue
        symbols = {b for (q, b) in transducer.rules if q == state}
        symbols.update(b for (q, b) in base.rules if q == state)
        for b in symbols:
            new_rhs = transducer.rules.get((state, b))
            old_rhs = base.rules.get((state, b))
            if (new_rhs is None) != (old_rhs is None):
                changed.add(state)
                break
            if new_rhs is not None and _canonical_rhs(new_rhs) != _canonical_rhs(old_rhs):
                changed.add(state)
                break
    return changed


def _dirty_states(transducer: TreeTransducer, changed: Set[str]) -> Set[str]:
    """Closure of ``changed`` under reverse deferral reachability.

    A forward cell ``(σ, a, P)`` is a function of the rules of every
    state deferral-reachable from ``P`` (tree cells defer to
    ``top_states`` of their rhs; nested rhs states start *separate*
    check keys, not cell dependencies), so a cell survives an edit
    exactly when no state in ``P`` can reach a changed state.  States
    outside ``changed`` have identical rules in both transducers, which
    makes the closure under either rule set the same; the new
    transducer's rules are used.
    """
    dirty = set(changed)
    grew = True
    while grew:
        grew = False
        for (state, _b), rhs in transducer.rules.items():
            if state in dirty:
                continue
            if any(t in dirty for t in top_states(rhs)):
                dirty.add(state)
                grew = True
    return dirty


def incremental_forward_tables(
    transducer: TreeTransducer,
    base_transducer: TreeTransducer,
    din: DTD,
    dout: DTD,
    base_tables: Dict[str, object],
    *,
    max_tuple: Optional[int] = None,
    max_product_nodes: int = 500_000,
    schema: Optional[ForwardSchema] = None,
) -> Optional[Tuple[Dict[str, object], Dict[str, int]]]:
    """Forward tables for ``transducer`` by delta from a base snapshot.

    Diffs the rule sets, keeps every base cell whose behavior tuple
    avoids the dirty-state closure (those least fixpoints are untouched
    by the edit), pre-installs the survivors into a fresh engine, and
    runs the chaotic iteration only over the remaining cells — re-using
    the survivors' persisted :class:`~repro.kernel.product.ProductBFS`
    frontiers instead of re-seeding them.  The result is the same least
    fixpoint snapshot a cold :func:`compute_forward_tables` over all
    check keys would produce, restricted to the cells reachable from the
    *new* transducer's checks (stale base cells are dropped, so chains
    of edits don't accumulate garbage).

    Returns ``(tables, info)`` with reuse counters, or ``None`` when the
    delta path does not apply (XPath calls, alphabet change) — callers
    fall back to a cold run.  Kernel path only.
    """
    if transducer.uses_calls() or base_transducer.uses_calls():
        return None
    if frozenset(transducer.alphabet) != frozenset(base_transducer.alphabet):
        # The completed output content DFAs are built over
        # ``transducer.alphabet | dout.alphabet`` — an alphabet change
        # re-interns them and invalidates every cell.
        return None
    if schema is None:
        schema = ForwardSchema(din, dout)
    if max_tuple is None:
        analysis = analyze(transducer)
        if analysis.deletion_path_width is None:
            raise ClassViolationError(
                "transducer has unbounded deletion path width (not in any "
                "T^{C,K}_trac); pass max_tuple to run the general engine"
            )
        max_tuple = max(1, analysis.copying_width * analysis.deletion_path_width)

    changed = changed_rule_states(transducer, base_transducer)
    dirty = _dirty_states(transducer, changed)

    keys = forward_check_keys(transducer, din, schema, use_kernel=True)

    # Reachability pre-walk over the *new* dependency graph: hedge
    # (σ, a, P) reads tree (σ, c, P) per child symbol c of a; tree
    # (σ, b, P) reads hedge (σ, b, deferred(P, b)).  Empty-P cells live
    # in the schema's shared region and manage themselves.
    decomp_memo: Dict[Tuple[str, str], Tuple[str, ...]] = {}

    def deferred(P: Tuple[str, ...], b: str) -> Tuple[str, ...]:
        out: List[str] = []
        for state in P:
            d = decomp_memo.get((state, b))
            if d is None:
                rhs = transducer.rules.get((state, b))
                d = top_states(rhs) if rhs is not None else ()
                decomp_memo[(state, b)] = d
            out.extend(d)
        result = tuple(out)
        if len(result) > max_tuple:
            raise BudgetExceededError(
                f"behavior tuple grew to {len(result)} > {max_tuple} "
                "(transducer outside the configured T_trac class)"
            )
        return result

    reach_hedge: Set[TupleKey] = set()
    reach_tree: Set[TupleKey] = set()
    stack: List[Tuple[str, TupleKey]] = [
        ("hedge", key) for key in keys if key[2]
    ]
    productive = schema.productive
    while stack:
        kind, key = stack.pop()
        sigma, a, P = key
        if kind == "hedge":
            if key in reach_hedge:
                continue
            reach_hedge.add(key)
            _idfa, _mask, child_syms = schema.in_kernel_info(a)
            for c, _index in child_syms:
                child = canonical_cell_key(sigma, c, P, True)
                if child[2] and child not in reach_tree:
                    stack.append(("tree", child))
        else:
            if key in reach_tree:
                continue
            reach_tree.add(key)
            if a not in productive:
                continue
            supplier = canonical_cell_key(sigma, a, deferred(P, a), True)
            if supplier[2] and supplier not in reach_hedge:
                stack.append(("hedge", supplier))

    engine = ForwardEngine(
        transducer, din, dout, max_tuple, max_product_nodes,
        use_kernel=True, schema=schema,
    )

    # Pre-install the surviving cells (clean ∩ reachable ∩ base): the
    # same live objects as the base snapshot — complete least fixpoints,
    # never mutated again — so the new run's dirty cells re-drain from
    # them at zero cost and ``_register`` adopts instead of rebuilding.
    base_hedge: Dict = base_tables["hedge"]  # type: ignore[assignment]
    base_tree: Dict = base_tables["tree"]  # type: ignore[assignment]
    reused_hedge = reused_tree = 0
    # σ-independent (empty-P) cells mention no transducer state, so every
    # one the base run materialized is valid verbatim.  They are excluded
    # from the reachability pre-walk (the schema's shared region manages
    # their evaluation), but they must still ride into this engine's
    # tables: witness extraction through a *reused* cell recurses into
    # them without ever requesting them, and the exported snapshot is the
    # next link's base — dropping them here would leave a chain of edits
    # with dangling witness references (KeyError under some hash orders).
    # ``_register`` re-adopts the live shared object for any cell the
    # dirty run also evaluates, so pre-installing never masks a reset.
    for key, entry in base_hedge.items():
        if not key[2]:
            engine.hedge_vals[key] = entry
    for key, cell in base_tree.items():
        if not key[2]:
            vals, int_table, order, index = cell
            engine.tree_vals[key] = vals
            engine._tree_int[key] = int_table
            engine._tree_order[key] = order
            engine._tree_index[key] = index
    for key in reach_hedge:
        if any(state in dirty for state in key[2]):
            continue
        entry = base_hedge.get(key)
        if entry is not None:
            engine.hedge_vals[key] = entry
            reused_hedge += 1
    for key in reach_tree:
        if any(state in dirty for state in key[2]):
            continue
        cell = base_tree.get(key)
        if cell is not None:
            vals, int_table, order, index = cell
            engine.tree_vals[key] = vals
            engine._tree_int[key] = int_table
            engine._tree_order[key] = order
            engine._tree_index[key] = index
            reused_tree += 1

    try:
        for key in keys:
            engine.request_hedge(*key)
        engine.run()
    except BaseException:
        schema.reset_shared()
        raise
    tables = export_forward_tables(engine)
    info = {
        "changed_states": len(changed),
        "dirty_states": len(dirty),
        "reused_hedge": reused_hedge,
        "reused_tree": reused_tree,
        "reachable_hedge": len(reach_hedge),
        "reachable_tree": len(reach_tree),
        "product_nodes": engine.work,
    }
    return tables, info


def _chain_top_level(
    dfa: DFA, segments, pi: Tuple[Slot, ...]
) -> Optional[object]:
    """Final DFA state of the output children word of an rhs node, for a
    given hedge behavior π (the paper's step (3) chaining); ``None`` when π
    is inconsistent with the segment chaining."""
    x = dfa.run(segments[0], start=dfa.initial)
    for j, (slot_start, slot_end) in enumerate(pi):
        if slot_start != x:
            return None
        x = dfa.run(segments[j + 1], start=slot_end)
    return x


def typecheck_forward(
    transducer: TreeTransducer,
    din: DTD,
    dout: DTD,
    max_tuple: Optional[int] = None,
    max_product_nodes: int = 500_000,
    want_counterexample: bool = True,
    use_kernel: bool = True,
    schema: Optional[ForwardSchema] = None,
    tables: Optional[Dict[str, object]] = None,
) -> TypecheckResult:
    """Sound and complete typechecking of ``T`` w.r.t. DTDs (Theorem 15).

    ``max_tuple`` defaults to ``C·K`` from Proposition 16 when the transducer
    lies in some ``T^{C,K}_trac``; for transducers with unbounded deletion
    path width pass an explicit budget to run the engine as a (possibly
    exponential) complete procedure — :class:`BudgetExceededError` signals
    the blow-up.

    ``use_kernel=False`` runs the fixpoint on the seed object-state tables
    instead of the interned kernel — same least fixpoint, kept as the
    differential-testing and benchmarking baseline.

    ``schema`` is a :class:`ForwardSchema` compiled for exactly these DTD
    objects — a warm :class:`~repro.core.session.Session` passes its own so
    repeated calls skip all schema-side setup; omitted, a private one is
    built and the call behaves exactly as before.  With a shared schema the
    kernel path also consults the per-transducer table cache: an
    equal-content transducer seen before is answered from its stored least
    fixpoint without running the engine (complete tables carry the verdict
    regardless of the per-call budgets, so a hit bypasses
    ``max_product_nodes``).

    ``tables`` injects precomputed forward tables directly (the merged
    result of a service shard fan-out, see :func:`compute_forward_tables` /
    :func:`merge_forward_tables`): the fixpoint is skipped and the
    root-check scan plus counterexample construction run against them.
    """
    if transducer.uses_calls():
        from repro.xpath.compile import compile_calls

        transducer = compile_calls(transducer)

    shared_schema = schema is not None
    if schema is None:
        schema = ForwardSchema(din, dout)

    analysis = analyze(transducer)
    if max_tuple is None:
        if analysis.deletion_path_width is None:
            raise ClassViolationError(
                "transducer has unbounded deletion path width (not in any "
                "T^{C,K}_trac); pass max_tuple to run the general engine"
            )
        max_tuple = max(1, analysis.copying_width * analysis.deletion_path_width)

    stats = {
        "algorithm": "forward (Lemma 14)",
        "copying_width": analysis.copying_width,
        "deletion_path_width": analysis.deletion_path_width,
        "max_tuple": max_tuple,
        "engine": "kernel" if use_kernel else "object",
    }

    # Empty input language: vacuously typechecks.
    if din.is_empty():
        return TypecheckResult(
            True, "forward", reason="input schema is empty", stats=stats
        )

    # Root-level checks.  The minimal witness tree is only built on demand:
    # its explicit form can be huge (it is shared internally, but callers
    # may traverse it), and passing instances never need it.
    root_rule = transducer.rules.get((transducer.initial, din.start))
    if root_rule is None:
        witness = minimal_tree(din)
        assert witness is not None
        return TypecheckResult(
            False,
            "forward",
            counterexample=witness,
            output=None,
            reason="no initial rule: the translation is empty",
            stats=stats,
        )
    if len(root_rule) != 1 or not isinstance(root_rule[0], RhsSym):
        raise ClassViolationError(
            "the rule for the input root symbol must produce a single "
            "Σ-rooted tree (Definition 5)"
        )
    root_out = root_rule[0]
    if root_out.label != dout.start:
        witness = minimal_tree(din)
        assert witness is not None
        return TypecheckResult(
            False,
            "forward",
            counterexample=witness,
            output=transducer.apply(witness),
            reason=(
                f"output root is {root_out.label!r}, "
                f"output schema starts with {dout.start!r}"
            ),
            stats=stats,
        )

    engine = ForwardEngine(
        transducer, din, dout, max_tuple, max_product_nodes,
        use_kernel=use_kernel, schema=schema,
    )
    pairs = reachable_pairs(
        transducer, din,
        usable_cache=schema.usable_cache, word_cache=schema.word_cache,
    )
    checks: List[Tuple[Pair, Tuple[int, ...], str, Tuple, Tuple[str, ...], TupleKey]] = []
    for (q, a) in pairs:
        rhs = transducer.rules.get((q, a))
        if rhs is None:
            continue
        for path, node in iter_rhs_nodes(rhs):
            if not isinstance(node, RhsSym):
                continue
            segments = top_decomposition(node.children)
            P = top_states(node.children)
            key = engine.key_for(node.label, a, P)
            checks.append(((q, a), path, node.label, segments, P, key))

    # Per-transducer table cache (kernel path, session-shared schema only:
    # a one-shot private schema is discarded with its cache).  A hit reuses
    # the complete least fixpoint of a previous run of an equal-content
    # transducer, so no fixpoint work happens at all.
    table_key = None
    if tables is None and use_kernel and shared_schema:
        table_key = transducer.content_hash()
        tables = schema.cached_tables(table_key)
        if tables is not None:
            stats["table_cache"] = "hit"
            _table_cache_metric("hit")

    if tables is not None:
        hydrate_forward_tables(engine, tables)
        if stats.get("table_cache") == "hit":
            engine.work = 0  # served from cache: this call computed nothing
    else:
        with _trace.span("fixpoint", engine="forward") as fix_span:
            for _pair, _path, _sigma, _segments, _P, key in checks:
                engine.request_hedge(*key)
            try:
                engine.run()
            except BaseException:
                # A mid-fixpoint abort can leave the schema's shared cells
                # with delta counters ahead of the edges actually pushed;
                # drop them so later calls on a warm session rebuild
                # instead of reusing corrupted state.
                schema.reset_shared()
                raise
            fix_span.set(work=engine.work)
        if table_key is not None:
            schema.store_tables(table_key, export_forward_tables(engine))
            stats["table_cache"] = "miss"
            _table_cache_metric("miss")
    stats["product_nodes"] = engine.work
    stats["reachable_pairs"] = len(pairs)

    violations: List[Violation] = []
    for pair, path, sigma, segments, P, key in checks:
        dfa = engine.out_dfa(sigma)
        entry = engine.hedge_vals[key]
        for pi in entry.accepted:
            final = _chain_top_level(dfa, segments, pi)
            if final is not None and final not in dfa.finals:
                violations.append(Violation(pair, path, sigma, pi, final))
                break  # one violating π per rhs node suffices

    stats["violations"] = len(violations)
    if not violations:
        return TypecheckResult(True, "forward", stats=stats)

    result = TypecheckResult(
        False,
        "forward",
        reason=_describe(violations[0]),
        stats=stats,
    )
    if want_counterexample:
        violation = violations[0]
        (q, a) = violation.pair
        deferred_key = (violation.sigma, a, _pi_states(transducer, q, a, violation.rhs_path))
        # Witnesses are built with subtree sharing: repeated (cell, τ)
        # configurations become one shared DagTree node, so the failing
        # copying families' counterexamples stay linear in the fixpoint
        # size (their unfoldings are exponential).
        subtree = DagTree(
            a,
            engine.build_dag_hedge(
                violation.sigma, a, deferred_key[2], violation.pi
            ),
        )
        context, hole = context_for(violation.pair, pairs, din)
        counterexample = _graft_dag(context, hole, subtree)
        result.counterexample = counterexample
        result.output = transducer.apply_dag(counterexample)
    return result


def _graft_dag(context: Tree, hole: Tuple[int, ...], subtree: DagTree) -> DagTree:
    """Replace the hole of an explicit context tree by a DAG subtree.

    The context's filler trees are shared objects (``context_for`` caches
    one minimal tree per symbol), so the conversion memoizes on node
    identity and the grafted counterexample stays DAG-small.
    """
    memo: Dict[int, DagTree] = {}

    def convert(node: Tree) -> DagTree:
        cached = memo.get(id(node))
        if cached is None:
            cached = DagTree(
                node.label, DagHedge(convert(c) for c in node.children)
            )
            memo[id(node)] = cached
        return cached

    def build(node: Tree, path: Tuple[int, ...]) -> DagTree:
        if not path:
            return subtree
        index, rest = path[0], path[1:]
        parts = [
            build(child, rest) if i == index else convert(child)
            for i, child in enumerate(node.children)
        ]
        return DagTree(node.label, DagHedge(parts))

    return build(context, hole)


def _pi_states(transducer, q, a, path) -> Tuple[str, ...]:
    from repro.transducers.rhs import node_at

    node = node_at(transducer.rules[(q, a)], path)
    assert isinstance(node, RhsSym)
    return top_states(node.children)


def _describe(violation: Violation) -> str:
    q, a = violation.pair
    return (
        f"children of a {violation.sigma!r}-node produced by rhs({q!r}, {a!r}) "
        f"at {violation.rhs_path} can violate dout({violation.sigma!r})"
    )
