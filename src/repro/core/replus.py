"""Typechecking w.r.t. DTD(RE⁺) — Section 5 (Theorems 30 and 37).

Two complete algorithms for arbitrary transducers (unbounded copying *and*
deletion):

* :func:`typecheck_replus` — the grammar route: for every reachable pair
  ``(q, a)`` and rhs node ``u`` construct the extended context-free grammar
  ``G_{q,a,u}`` with ``L_{q,a,u} ⊆ L(G_{q,a,u})`` and, by Theorem 30,
  ``L(G_{q,a,u}) ⊆ L(dout(σ)) ⟺ L_{q,a,u} ⊆ L(dout(σ))``; each inclusion is
  a PTIME CFG-in-DFA test;
* :func:`typecheck_replus_witnesses` — the §6 two-witness route: the
  instance typechecks iff both ``T(t_min)`` and ``T(t_vast)`` conform, with
  both witnesses processed as DAGs so the algorithm stays polynomial despite
  their exponential unfoldings.

Counterexamples (Corollary 38): the two-witness route *is* the
counterexample generator — whenever the grammar route rejects, ``t_min`` or
``t_vast`` is a concrete counterexample.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import ClassViolationError
from repro.core.problem import TypecheckResult
from repro.core.reachability import reachable_pairs
from repro.schemas.dtd import DTD
from repro.schemas.witnesses import t_min_dag, t_vast_dag
from repro.strings.cfg import ECFG, ECFGAtom, nt, t as terminal
from repro.strings.replus import REPlus
from repro.transducers.rhs import RhsSym, iter_rhs_nodes, top_decomposition, top_states
from repro.transducers.transducer import TreeTransducer
from repro.trees.dag import DagTree, TransferTable, distinct_tree_nodes, unfold_tree
from repro.trees.tree import Tree


def _require_replus(dtd: DTD, name: str) -> None:
    if dtd.kind != "RE+":
        raise ClassViolationError(
            f"{name} is a DTD({dtd.kind}); Section 5 needs DTD(RE+)"
        )


class ReplusSchema:
    """Per-``(din, dout)`` compiled artifacts for the Section 5 algorithms.

    Validates the RE⁺ class once and owns the schema-only state both routes
    keep recomputing per call: the reachability caches, the RE⁺ views and
    output content DFAs, and the §6 witness DAGs ``t_min``/``t_vast``
    (functions of the input DTD alone).  A warm session shares one instance
    across every transducer checked against the pair; standalone calls
    build a private one, so one-shot behavior is unchanged.
    """

    def __init__(self, din: DTD, dout: DTD) -> None:
        _require_replus(din, "input schema")
        _require_replus(dout, "output schema")
        self.din = din
        self.dout = dout
        self.usable_cache: dict = {}
        self.word_cache: dict = {}
        self._witness_dags: dict = {}
        self.compiled = False

    def witness_dag(self, name: str) -> DagTree:
        """The DAG-compressed §6 witness (``"t_min"`` or ``"t_vast"``)."""
        dag = self._witness_dags.get(name)
        if dag is None:
            builder = t_min_dag if name == "t_min" else t_vast_dag
            dag = builder(self.din)
            self._witness_dags[name] = dag
        return dag

    def warm(self) -> "ReplusSchema":
        """Eagerly compile the RE⁺ views, output DFAs and witness DAGs."""
        if self.compiled:
            return self
        for symbol in sorted(self.din.alphabet, key=repr):
            self.din.content_replus(symbol)
        for symbol in sorted(self.dout.alphabet, key=repr):
            self.dout.content_dfa(symbol)
        self.witness_dag("t_min")
        self.witness_dag("t_vast")
        self.compiled = True
        return self


def _expand_factors(expr: REPlus, state: str) -> List[ECFGAtom]:
    """Atoms ``⟨state, b₁⟩^{α₁} ⋯ ⟨state, b_m⟩^{α_m}`` for one rhs state."""
    atoms: List[ECFGAtom] = []
    for factor in expr.factors:
        head = ("pair", state, factor.symbol)
        atoms.extend([nt(head)] * (factor.count - 1))
        atoms.append(nt(head, plus=not factor.exact))
    return atoms


def build_grammar(
    transducer: TreeTransducer,
    din: DTD,
    q: str,
    a: str,
    u_path: Tuple[int, ...],
) -> ECFG:
    """The extended CFG ``G_{q,a,u}`` of Section 5."""
    from repro.transducers.rhs import node_at

    node = node_at(transducer.rules[(q, a)], u_path)
    assert isinstance(node, RhsSym)
    segments = top_decomposition(node.children)
    states = top_states(node.children)
    e_in = din.content_replus(a)

    rules = {}
    start = ("start", q, a, u_path)
    body: List[ECFGAtom] = [terminal(s) for s in segments[0]]
    for index, state in enumerate(states):
        body.extend(_expand_factors(e_in, state))
        body.extend(terminal(s) for s in segments[index + 1])
    rules[start] = [body]

    # Pair nonterminals ⟨p, b⟩ — the language {top(T^p(t)) | t ∈ L(din, b)}.
    pending = {atom.value for atom in body if not atom.is_terminal}
    while pending:
        head = pending.pop()
        if head in rules:
            continue
        _, p, b = head
        expr = din.content_replus(b)
        rhs = transducer.rules.get((p, b))
        if rhs is None:
            rules[head] = [[]]
            continue
        segs = top_decomposition(rhs)
        tops = top_states(rhs)
        pair_body: List[ECFGAtom] = [terminal(s) for s in segs[0]]
        for index, p2 in enumerate(tops):
            pair_body.extend(_expand_factors(expr, p2))
            pair_body.extend(terminal(s) for s in segs[index + 1])
        rules[head] = [pair_body]
        for atom in pair_body:
            if not atom.is_terminal and atom.value not in rules:
                pending.add(atom.value)
    return ECFG(rules, start)


def validate_output_dag(dout: DTD, dag: DagTree) -> bool:
    """Whether the unfolding of ``dag`` satisfies ``dout`` — in DAG time."""
    if dag.label != dout.start:
        return False
    tables = {}
    for node in distinct_tree_nodes(dag):
        table = tables.get(node.label)
        if table is None:
            table = TransferTable(
                dout.content_dfa(node.label).complete(dout.alphabet | {node.label})
            )
            tables[node.label] = table
        if not table.accepts_top(node.children):
            return False
    return True


def _root_failure(
    transducer: TreeTransducer, din: DTD, dout: DTD, algorithm: str
) -> Optional[TypecheckResult]:
    """Shared root-level checks; ``None`` when the root is fine."""
    from repro.trees.generate import minimal_tree

    if din.is_empty():
        return TypecheckResult(True, algorithm, reason="input schema is empty")
    rule = transducer.rules.get((transducer.initial, din.start))
    if rule is not None and len(rule) == 1 and isinstance(rule[0], RhsSym):
        if rule[0].label == dout.start:
            return None  # root is fine; skip witness construction
    witness = minimal_tree(din)
    assert witness is not None
    if rule is None:
        return TypecheckResult(
            False,
            algorithm,
            counterexample=witness,
            reason="no initial rule: the translation is empty",
        )
    if len(rule) != 1 or not isinstance(rule[0], RhsSym):
        raise ClassViolationError(
            "the rule for the input root symbol must produce a single "
            "Σ-rooted tree (Definition 5)"
        )
    root = rule[0]
    if root.label != dout.start:
        return TypecheckResult(
            False,
            algorithm,
            counterexample=witness,
            output=transducer.apply(witness),
            reason=(
                f"output root is {root.label!r}, output schema starts with "
                f"{dout.start!r}"
            ),
        )
    return None


def typecheck_replus(
    transducer: TreeTransducer,
    din: DTD,
    dout: DTD,
    max_counterexample_nodes: int = 100_000,
    schema: Optional[ReplusSchema] = None,
) -> TypecheckResult:
    """TC[T_d,c, DTD(RE⁺)] in PTIME — Theorem 37 (grammar route).

    On rejection, the counterexample is produced by the two-witness check
    (Corollary 38: ``t_min`` or ``t_vast`` is a counterexample), unfolded to
    an explicit tree when it fits ``max_counterexample_nodes``.

    ``schema`` is a :class:`ReplusSchema` compiled for exactly these DTD
    objects (a warm session passes its own; omitted, one is built here).
    """
    if schema is None:
        schema = ReplusSchema(din, dout)
    if transducer.uses_calls():
        from repro.xpath.compile import compile_calls

        transducer = compile_calls(transducer)

    early = _root_failure(transducer, din, dout, "replus")
    if early is not None:
        return early

    pairs = reachable_pairs(
        transducer, din,
        usable_cache=schema.usable_cache, word_cache=schema.word_cache,
    )
    stats = {"reachable_pairs": len(pairs), "grammars": 0}
    failing = None
    for (q, a) in sorted(pairs):
        rhs = transducer.rules.get((q, a))
        if rhs is None:
            continue
        for path, node in iter_rhs_nodes(rhs):
            if not isinstance(node, RhsSym):
                continue
            grammar = build_grammar(transducer, din, q, a, path)
            stats["grammars"] += 1
            target = dout.content_dfa(node.label).complete(
                dout.alphabet | transducer.alphabet
            )
            included, word = grammar.included_in_dfa(target)
            if not included:
                failing = (q, a, path, node.label, word)
                break
        if failing:
            break

    if failing is None:
        return TypecheckResult(True, "replus", stats=stats)

    q, a, path, sigma, word = failing
    result = TypecheckResult(
        False,
        "replus",
        reason=(
            f"L(G_{{{q},{a},{path}}}) ⊄ dout({sigma!r}): grammar derives "
            f"children word {' '.join(map(str, word)) or 'ε'}"
        ),
        stats=stats,
    )
    # Corollary 38: t_min or t_vast is a concrete counterexample.
    witness = _two_witness_counterexample(
        transducer, dout, max_counterexample_nodes, schema
    )
    if witness is not None:
        result.counterexample, result.output = witness
    return result


def _two_witness_counterexample(
    transducer: TreeTransducer,
    dout: DTD,
    max_nodes: int,
    schema: ReplusSchema,
) -> Optional[Tuple[Tree, Optional[Tree]]]:
    for name in ("t_min", "t_vast"):
        dag = schema.witness_dag(name)
        image = transducer.apply_dag(dag)
        if image is not None and validate_output_dag(dout, image):
            continue
        try:
            tree = unfold_tree(dag, max_nodes)
        except Exception:
            return None
        return tree, transducer.apply(tree)
    return None


def typecheck_replus_witnesses(
    transducer: TreeTransducer,
    din: DTD,
    dout: DTD,
    max_counterexample_nodes: int = 100_000,
    schema: Optional[ReplusSchema] = None,
) -> TypecheckResult:
    """The §6 two-witness algorithm: typechecks iff ``T(t_min)`` and
    ``T(t_vast)`` both conform — evaluated on DAGs, hence PTIME."""
    if schema is None:
        schema = ReplusSchema(din, dout)
    if transducer.uses_calls():
        from repro.xpath.compile import compile_calls

        transducer = compile_calls(transducer)
    early = _root_failure(transducer, din, dout, "replus-witnesses")
    if early is not None:
        return early

    for name in ("t_min", "t_vast"):
        dag = schema.witness_dag(name)
        image = transducer.apply_dag(dag)
        if image is not None and validate_output_dag(dout, image):
            continue
        result = TypecheckResult(
            False,
            "replus-witnesses",
            reason=f"{name} is a counterexample",
        )
        try:
            result.counterexample = unfold_tree(dag, max_counterexample_nodes)
            result.output = transducer.apply(result.counterexample)
        except Exception:
            result.stats["counterexample_dag"] = dag
        return result
    return TypecheckResult(
        True,
        "replus-witnesses",
        reason="both t_min and t_vast conform (Lemma 36)",
    )
