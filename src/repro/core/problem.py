"""Instance and result types for the typechecking problem (Definition 9)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.trees.tree import Tree


@dataclass
class TypecheckResult:
    """Outcome of a typechecking run.

    ``typechecks`` answers Definition 8; when ``False`` a counterexample
    input tree is attached whenever the algorithm produces one
    (Corollary 38 — all complete algorithms here do, possibly on demand).
    """

    typechecks: bool
    algorithm: str
    counterexample: Optional[Tree] = None
    output: Optional[Tree] = None
    reason: str = ""
    stats: Dict[str, object] = field(default_factory=dict)
    #: Optional :class:`repro.obs.explain.QueryReport` attached when the
    #: query ran with ``explain=True`` (typed loosely to keep this module
    #: free of obs imports).
    report: Optional[object] = None

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.typechecks

    def verify(self, transducer, sin_accepts, sout_accepts) -> bool:
        """Check the attached counterexample against the instance.

        ``sin_accepts`` / ``sout_accepts`` are predicates on trees (e.g.
        ``din.accepts`` / ``dout.accepts``).  A failing instance must carry a
        tree of the input schema whose translation violates the output
        schema; ``None`` translations (empty output) always violate.

        Shared :class:`~repro.trees.dag.DagTree` counterexamples are
        verified in DAG size: the translation runs sharing-preserving
        (``transducer.apply_dag``) and ``DTD.accepts`` validates dags
        without unfolding.  Transducers whose rules apply_dag cannot run
        (XPath selector calls need positional context) fall back to the
        unfolded tree.
        """
        from repro.errors import InvalidTransducerError
        from repro.trees.dag import DagTree, unfold_tree

        if self.typechecks:
            return self.counterexample is None
        if self.counterexample is None:
            return False
        if not sin_accepts(self.counterexample):
            return False
        if isinstance(self.counterexample, DagTree):
            try:
                image = transducer.apply_dag(self.counterexample)
            except InvalidTransducerError:
                image = transducer.apply(unfold_tree(self.counterexample))
        else:
            image = transducer.apply(self.counterexample)
        return image is None or not sout_accepts(image)
