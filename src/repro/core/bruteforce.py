"""Brute-force typechecking oracle.

Enumerates every input tree up to a node budget, applies the transducer and
validates the output.  Exponential — usable only on tiny instances, but an
invaluable differential-testing oracle for the polynomial algorithms: if the
fast engine and the oracle ever disagree on trees within the budget, one of
them is wrong.
"""

from __future__ import annotations

from typing import Optional

from repro.core.problem import TypecheckResult
from repro.schemas.dtd import DTD
from repro.transducers.transducer import TreeTransducer
from repro.trees.generate import enumerate_trees


def typecheck_bruteforce(
    transducer: TreeTransducer,
    din: DTD,
    dout: DTD,
    max_nodes: int = 8,
) -> TypecheckResult:
    """Check every tree of ``L(din)`` with at most ``max_nodes`` nodes.

    *Sound for rejection* (a found counterexample is real) but complete only
    up to the budget: a ``True`` answer means "no counterexample of that
    size".
    """
    count = 0
    for tree in enumerate_trees(din, max_nodes):
        count += 1
        image: Optional = transducer.apply(tree)
        if image is None or not dout.accepts(image):
            return TypecheckResult(
                False,
                "bruteforce",
                counterexample=tree,
                output=image,
                reason=f"enumeration found a counterexample of size {tree.size}",
                stats={"trees_checked": count, "max_nodes": max_nodes},
            )
    return TypecheckResult(
        True,
        "bruteforce",
        reason=f"no counterexample among the {count} trees of ≤ {max_nodes} nodes",
        stats={"trees_checked": count, "max_nodes": max_nodes},
    )
