"""The counterexample NTA of Lemma 14 — reachable part.

Lemma 14 constructs an NTA ``B`` with
``L(B) = {t ∈ L(din) : T(t) ∉ L(dout)}`` whose explicit state space is
astronomically large (``O(|Σ| |Q_T|^M |dout|^{2M})``).  This module builds
the *reachable* part of ``B`` from the tables of the forward engine, giving
the same language with only the states that matter:

* ``("plain", a)`` — a valid subtree rooted ``a`` (the ``Σ`` states);
* ``("spine", q, a)`` — a valid subtree containing the violating node, whose
  root is processed in state ``q`` (the ``(a, q)`` states);
* ``("check", q, a)`` — the violating node itself (the ``(a, q, check)``
  states);
* ``("cfg", σ, b, P, τ)`` — the guessed-behavior states (the paper's
  ``(a, (q₁, ℓ₁, r₁), …)`` tuples): a valid subtree rooted ``b`` realizing
  behavior tuple τ against ``A_σ``.

With this automaton, Proposition 4 delivers everything Section 6 promises:
emptiness re-decides typechecking (a strong internal cross-check), witness
generation yields counterexamples (Corollary 38), and finiteness decides
almost-always typechecking (Corollary 39).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core.forward import ForwardEngine, ForwardSchema, _chain_top_level
from repro.core.reachability import reachable_pairs
from repro.schemas.dtd import DTD
from repro.strings.nfa import NFA
from repro.transducers.rhs import RhsSym, all_states, iter_rhs_nodes, top_decomposition, top_states
from repro.transducers.transducer import TreeTransducer
from repro.tree_automata.nta import NTA


def counterexample_nta(
    transducer: TreeTransducer,
    din: DTD,
    dout: DTD,
    max_tuple: Optional[int] = None,
    *,
    schema: Optional[ForwardSchema] = None,
    use_kernel: bool = True,
) -> NTA:
    """Build (the reachable part of) Lemma 14's counterexample automaton.

    ``L(result) = {t ∈ L(din) : T(t) ∉ L(dout)}``.  Root-level failures (no
    initial rule / wrong output root label) make every valid input a
    counterexample; the automaton then reduces to the input DTD's automaton.

    ``schema`` is a :class:`~repro.core.forward.ForwardSchema` compiled for
    exactly these DTD objects — a warm :class:`~repro.core.session.Session`
    passes its own (``session.counterexample_nta``), so the forward engine
    reuses the shared σ-independent fixpoint cells and reachability caches
    instead of building a private engine from scratch.
    """
    if transducer.uses_calls():
        from repro.xpath.compile import compile_calls

        transducer = compile_calls(transducer)

    if schema is None:
        schema = ForwardSchema(din, dout)

    productive = din.productive_symbols()
    # Plain states exist for every symbol; unproductive ones simply cannot
    # head an accepting run (their content can never complete below).
    plain = {("plain", a) for a in din.alphabet}

    def plain_nfa(symbol: str) -> NFA:
        return din.content_nfa(symbol).map_symbols(lambda c: ("plain", c))

    # ------------------------------------------------------------------
    # Degenerate cases: every valid input is a counterexample.
    # ------------------------------------------------------------------
    def whole_language_nta() -> NTA:
        states = set(plain)
        delta = {}
        for a in productive:
            nfa = plain_nfa(a)
            delta[(("plain", a), a)] = nfa.with_alphabet(states)
        finals = {("plain", din.start)} if din.start in productive else set()
        return NTA(states, din.alphabet, delta, finals & states)

    if din.start not in productive:
        return NTA({("plain", "∅")}, din.alphabet, {}, set())

    root_rule = transducer.rules.get((transducer.initial, din.start))
    if root_rule is None:
        return whole_language_nta()
    if len(root_rule) != 1 or not isinstance(root_rule[0], RhsSym):
        from repro.errors import ClassViolationError

        raise ClassViolationError(
            "the rule for the input root symbol must produce a single "
            "Σ-rooted tree (Definition 5)"
        )
    if root_rule[0].label != dout.start:
        return whole_language_nta()

    # ------------------------------------------------------------------
    # Forward tables.
    # ------------------------------------------------------------------
    engine = ForwardEngine(
        transducer, din, dout, max_tuple,
        use_kernel=use_kernel, schema=schema,
    )
    pairs = reachable_pairs(
        transducer, din,
        usable_cache=schema.usable_cache, word_cache=schema.word_cache,
    )
    checks = []
    for (q, a) in pairs:
        rhs = transducer.rules.get((q, a))
        if rhs is None:
            continue
        for path, node in iter_rhs_nodes(rhs):
            if not isinstance(node, RhsSym):
                continue
            key = engine.request_hedge(node.label, a, top_states(node.children))
            checks.append(((q, a), path, node, key))
    try:
        engine.run()
    except BaseException:
        # Same abort hygiene as typecheck_forward: a mid-fixpoint abort
        # would leave shared cells with counters ahead of pushed edges.
        schema.reset_shared()
        raise

    # ------------------------------------------------------------------
    # States.
    # ------------------------------------------------------------------
    states: Set = set(plain)
    for (q, a) in pairs:
        states.add(("spine", q, a))
        states.add(("check", q, a))
    cfg_states: Set = set()
    for (sigma, b, P), table in engine.tree_vals.items():
        for tau in table:
            cfg_states.add(("cfg", sigma, b, P, tau))
    states |= cfg_states
    state_set = frozenset(states)

    delta: Dict[Tuple, NFA] = {}

    # plain states: the input DTD itself.
    for a in productive:
        delta[(("plain", a), a)] = plain_nfa(a).with_alphabet(state_set)

    # cfg states: the hedge product graphs, with finals chosen per τ.
    # (Cell keys come from the engine and are canonical: σ is None for
    # cells with an empty behavior tuple, which the kernel shares across
    # output symbols — the state names below just follow the keys.)
    for (sigma, b, P), table in engine.tree_vals.items():
        if not table:
            continue
        deferred = engine.deferred_tuple(P, b)
        hedge_key = engine.key_for(sigma, b, deferred)
        entry = engine.hedge_vals[hedge_key]
        dfa = engine.out_dfa(sigma)
        dfa_in = din.content_dfa(b)
        graph_states = set(entry.nodes)
        transitions: Dict = {}
        child_sigma = hedge_key[0]
        for (src, c, tau_c, dst) in entry.edges:
            transitions.setdefault(src, {}).setdefault(
                ("cfg", child_sigma, c, deferred, tau_c), set()
            ).add(dst)
        taus_by_pi: Dict[Tuple, Set] = {}
        for pi in entry.accepted:
            taus_by_pi[pi] = set(engine._assemble(P, b, pi, dfa))
        for tau in table:
            finals = {
                node
                for node in graph_states
                if node[0] in dfa_in.finals and tau in taus_by_pi.get(node[1], ())
            }
            delta[(("cfg", sigma, b, P, tau), b)] = NFA(
                graph_states,
                state_set,
                transitions,
                entry.seeds,
                finals,
            )

    # check states: union over the rule's rhs nodes of the hedge graphs with
    # "bad final chain" acceptance.
    check_parts: Dict[Tuple[str, str], List[NFA]] = {}
    for (q, a), path, node, key in checks:
        sigma = node.label
        entry = engine.hedge_vals[key]
        dfa = engine.out_dfa(sigma)
        segments = top_decomposition(node.children)
        P = top_states(node.children)
        bad = {
            graph_node
            for graph_node in entry.nodes
            if graph_node[0] in din.content_dfa(a).finals
            and (
                lambda final: final is not None and final not in dfa.finals
            )(_chain_top_level(dfa, segments, graph_node[1]))
        }
        if not bad:
            continue
        transitions = {}
        cfg_sigma = engine.key_for(sigma, a, P)[0]
        for (src, c, tau_c, dst) in entry.edges:
            transitions.setdefault(src, {}).setdefault(
                ("cfg", cfg_sigma, c, P, tau_c), set()
            ).add(dst)
        check_parts.setdefault((q, a), []).append(
            NFA(set(entry.nodes), state_set, transitions, entry.seeds, bad)
        )
    for (q, a), parts in check_parts.items():
        union = parts[0]
        for extra in parts[1:]:
            union = union.union(extra)
        delta[(("check", q, a), a)] = union.with_alphabet(state_set)

    # spine states: one child carries the spine/check, the rest are plain.
    for (q, a) in pairs:
        rhs = transducer.rules.get((q, a))
        if rhs is None:
            continue
        inner_states = set(all_states(rhs))
        base = din.content_nfa(a)
        marked_states = {(s, flag) for s in base.states for flag in (0, 1)}
        transitions: Dict = {}
        for src, row in base.transitions.items():
            for c, targets in row.items():
                for tgt in targets:
                    # plain child: flag preserved.
                    for flag in (0, 1):
                        transitions.setdefault((src, flag), {}).setdefault(
                            ("plain", c), set()
                        ).add((tgt, flag))
                    # spine/check child: flag 0 -> 1.
                    for q2 in inner_states:
                        if (q2, c) not in pairs:
                            continue
                        for kind in ("spine", "check"):
                            transitions.setdefault((src, 0), {}).setdefault(
                                (kind, q2, c), set()
                            ).add((tgt, 1))
        delta[(("spine", q, a), a)] = NFA(
            marked_states,
            state_set,
            transitions,
            {(s, 0) for s in base.initial},
            {(s, 1) for s in base.finals},
        )

    finals = {
        ("spine", transducer.initial, din.start),
        ("check", transducer.initial, din.start),
    }
    return NTA(state_set, din.alphabet, delta, finals & state_set)
