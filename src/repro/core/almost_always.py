"""Almost-always typechecking — Corollary 39.

An instance *typechecks almost always* when the set
``{t ∈ L(din) : T(t) ∉ L(dout)}`` of counterexamples is finite (Engelfriet &
Maneth's notion, Section 6).  Since the forward engine materializes the
reachable part of Lemma 14's counterexample NTA and finiteness of NTA(NFA)
languages is decidable in PTIME (Proposition 4(1)), the corollary is
immediate: build the automaton, test finiteness.
"""

from __future__ import annotations

from typing import Optional

from repro.core.cex_nta import counterexample_nta
from repro.core.forward import ForwardSchema
from repro.schemas.dtd import DTD
from repro.transducers.transducer import TreeTransducer
from repro.tree_automata.finiteness import is_finite


def typechecks_almost_always(
    transducer: TreeTransducer,
    din: DTD,
    dout: DTD,
    max_tuple: Optional[int] = None,
    *,
    schema: Optional[ForwardSchema] = None,
    use_kernel: bool = True,
) -> bool:
    """Whether only finitely many input trees violate the output schema.

    ``schema`` threads a warm session's compiled
    :class:`~repro.core.forward.ForwardSchema` into the underlying
    counterexample automaton (``session.typechecks_almost_always``), so
    warm Corollary 39 queries skip all schema-side setup.
    """
    automaton = counterexample_nta(
        transducer, din, dout, max_tuple, schema=schema, use_kernel=use_kernel
    )
    return is_finite(automaton)
