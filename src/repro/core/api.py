"""One-call typechecking API with algorithm selection.

``typecheck(T, Sin, Sout)`` picks the paper's algorithm for the instance:

* DTD(RE⁺) schemas → the Section 5 grammar algorithm (any transducer);
* transducers in some ``T^{C,K}_trac`` + DTDs → the cheaper of the two
  complete engines, chosen from measurable schema shape: the Lemma 14
  forward engine's predicted key cost (``n_out^m`` tuple seeds plus its
  dependency-closure content-DFA sizes) is compared against the backward
  inverse-type-inference engine's (input content-DFA sizes × tracked
  behavior monoid), and the smaller predicted total runs (XPath/DFA calls
  are compiled away first, Theorems 23/29; an explicit ``max_tuple``
  forces forward);
* ``T_del-relab`` + tree-automaton schemas → the Theorem 20 pipeline;
* any other transducer over DTDs → the backward engine (inverse type
  inference is complete for every deterministic top-down transducer over
  DTDs, budget-guarded) — where the forward engine would raise a
  :class:`~repro.errors.ClassViolationError`, auto now degrades to the
  classical route instead of refusing;
* anything else (out-of-class transducers over non-DTD schemas) → a
  :class:`~repro.errors.ClassViolationError` explaining which frontier
  was crossed (that is the paper's message: outside these classes,
  complete typechecking is provably intractable).

``result.stats["auto_method"]`` records the routed engine; cost-compared
routes also carry ``auto_forward_cost`` / ``auto_backward_cost``.

Since the compiled-session redesign this module is a thin facade over
:mod:`repro.core.session`: every call resolves the schema pair through the
in-process registry (keyed by content hashes), so repeated calls against
equal schemas — even freshly constructed ones — transparently reuse a warm
:class:`~repro.core.session.Session` and skip all schema compilation.  Hold
a session yourself (``repro.compile(sin, sout)``) when checking many
transducers against one pair.

Unknown per-call options now raise a clear :class:`TypeError` naming the
offending option instead of being forwarded blindly into the per-method
functions.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.core.problem import TypecheckResult
from repro.core.session import compile as compile_session
from repro.schemas.dtd import DTD
from repro.transducers.transducer import TreeTransducer
from repro.tree_automata.nta import NTA

Schema = Union[DTD, NTA]


def typecheck(
    transducer: TreeTransducer,
    sin: Schema,
    sout: Schema,
    method: str = "auto",
    max_tuple: Optional[int] = None,
    **kwargs,
) -> TypecheckResult:
    """Decide whether ``T(t) ∈ Sout`` for every ``t ∈ Sin`` (Definition 9).

    ``method``: ``"auto"`` (default), ``"forward"``, ``"backward"`` (the
    inverse-type-inference engine — complete for any deterministic
    top-down transducer over DTDs), ``"replus"``, ``"replus-witnesses"``,
    ``"delrelab"`` or ``"bruteforce"``.

    The signature and result semantics are unchanged from the seed API; the
    call is now served by a registry-cached compiled session, so repeated
    calls with equal schemas skip schema-side setup.
    """
    # A per-call ``max_product_nodes`` kwarg stays in ``kwargs`` and is
    # forwarded below — it must never become the registry-shared session's
    # default, or one aborted low-budget call would poison every later
    # plain call on the same schemas.
    session = compile_session(
        sin,
        sout,
        use_kernel=bool(kwargs.get("use_kernel", True)),
        eager=False,
    )
    return session.typecheck(transducer, method=method, max_tuple=max_tuple, **kwargs)
