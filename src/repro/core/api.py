"""One-call typechecking API with algorithm selection.

``typecheck(T, Sin, Sout)`` picks the paper's algorithm for the instance:

* DTD(RE⁺) schemas → the Section 5 grammar algorithm (any transducer);
* transducers in some ``T^{C,K}_trac`` + DTDs → the Lemma 14 forward engine
  (XPath/DFA calls are compiled away first, Theorems 23/29);
* ``T_del-relab`` + tree-automaton schemas → the Theorem 20 pipeline;
* anything else → a :class:`~repro.errors.ClassViolationError` explaining
  which frontier was crossed (that is the paper's message: outside these
  classes, complete typechecking is provably intractable).
"""

from __future__ import annotations

from typing import Optional, Union

from repro.errors import ClassViolationError
from repro.core.delrelab import typecheck_delrelab
from repro.core.forward import typecheck_forward
from repro.core.problem import TypecheckResult
from repro.core.replus import typecheck_replus, typecheck_replus_witnesses
from repro.core.bruteforce import typecheck_bruteforce
from repro.schemas.dtd import DTD
from repro.transducers.analysis import analyze
from repro.transducers.transducer import TreeTransducer
from repro.tree_automata.nta import NTA

Schema = Union[DTD, NTA]


def typecheck(
    transducer: TreeTransducer,
    sin: Schema,
    sout: Schema,
    method: str = "auto",
    max_tuple: Optional[int] = None,
    **kwargs,
) -> TypecheckResult:
    """Decide whether ``T(t) ∈ Sout`` for every ``t ∈ Sin`` (Definition 9).

    ``method``: ``"auto"`` (default), ``"forward"``, ``"replus"``,
    ``"replus-witnesses"``, ``"delrelab"`` or ``"bruteforce"``.
    """
    if method == "forward":
        return typecheck_forward(transducer, _dtd(sin), _dtd(sout), max_tuple, **kwargs)
    if method == "replus":
        return typecheck_replus(transducer, _dtd(sin), _dtd(sout), **kwargs)
    if method == "replus-witnesses":
        return typecheck_replus_witnesses(transducer, _dtd(sin), _dtd(sout), **kwargs)
    if method == "delrelab":
        return typecheck_delrelab(transducer, sin, sout, **kwargs)
    if method == "bruteforce":
        return typecheck_bruteforce(transducer, _dtd(sin), _dtd(sout), **kwargs)
    if method != "auto":
        raise ValueError(f"unknown method {method!r}")

    dtd_schemas = isinstance(sin, DTD) and isinstance(sout, DTD)
    if dtd_schemas and sin.kind == "RE+" and sout.kind == "RE+":
        return typecheck_replus(transducer, sin, sout, **kwargs)

    plain = transducer
    if transducer.uses_calls():
        from repro.xpath.compile import compile_calls

        plain = compile_calls(transducer)
    analysis = analyze(plain)

    if dtd_schemas and (analysis.in_trac or max_tuple is not None):
        return typecheck_forward(plain, sin, sout, max_tuple, **kwargs)
    if analysis.is_del_relab:
        return typecheck_delrelab(plain, sin, sout, **kwargs)
    raise ClassViolationError(
        "instance crosses the tractability frontier: the transducer has "
        f"copying width {analysis.copying_width} and "
        f"{'unbounded' if analysis.deletion_path_width is None else analysis.deletion_path_width} "
        "deletion path width, and the schemas are "
        f"{type(sin).__name__}/{type(sout).__name__}. "
        "Options: restrict the transducer (Theorem 15/20), use DTD(RE+) "
        "schemas (Theorem 37), or pass max_tuple for a best-effort "
        "(possibly exponential) run of the forward engine."
    )


def _dtd(schema: Schema) -> DTD:
    if not isinstance(schema, DTD):
        raise ClassViolationError(
            "this method needs DTD schemas (tree automata are supported by "
            "method='delrelab')"
        )
    return schema
