"""Typechecking T_del-relab w.r.t. DTAc(DFA) — Theorem 20.

Pipeline (exactly the proof of Theorem 20):

1. check ``T ∈ T_del-relab`` (at most one state per rhs);
2. ``T'``: replace every *deleting* (top-level) state ``q`` by ``#(q)`` — a
   non-deleting transducer emitting the placeholder ``#``;
3. ``B_in := T'(L(A_in))`` via the Lemma 19 image construction;
4. ``Ā_out``: complement the complete deterministic output automaton by
   flipping final states;
5. ``B_out``: the #-elimination lift — ``t' ∈ L(B_out) ⟺ γ(t') ∈ L(Ā_out)``;
6. the instance typechecks iff ``L(B_in ∩ B_out) = ∅`` (Fig. A.1 emptiness).

Inputs that the transducer translates to the *empty hedge* (no initial rule
for their root symbol) are counterexamples outside the image automaton; they
are checked separately up front.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.errors import ClassViolationError
from repro.core.problem import TypecheckResult
from repro.schemas.dtd import DTD
from repro.schemas.to_nta import dtd_to_dtac, dtd_to_nta
from repro.strings.nfa import NFA
from repro.transducers.analysis import analyze
from repro.transducers.image import image_nta
from repro.transducers.rhs import RhsState, RhsSym
from repro.transducers.transducer import TreeTransducer
from repro.tree_automata.emptiness import witness_tree
from repro.tree_automata.hash_elim import HASH, eliminate_hashes, hash_elimination_lift
from repro.tree_automata.nta import NTA
from repro.tree_automata.ops import complement_dtac, intersect
from repro.util import fresh_symbol

Schema = Union[DTD, NTA]


def wrap_deleting_states(
    transducer: TreeTransducer, hash_symbol: str = HASH
) -> TreeTransducer:
    """``T'`` of Theorem 20: every top-level state ``q`` becomes ``#(q)``.

    An *initial* rhs that is not exactly one tree (the empty hedge, or two
    or more trees) is additionally rooted under ``#`` so that ``T'`` maps
    every input to a single tree — the image automaton of Lemma 19 accepts
    trees, so a hedge-shaped root output is otherwise unrepresentable.
    ``γ`` splices the wrapper away again, so the elimination semantics the
    lift and the non-tree detector reason about are unchanged.
    """
    new_rules = {}
    for key, rhs in transducer.rules.items():
        wrapped = tuple(
            RhsSym(hash_symbol, (node,)) if isinstance(node, RhsState) else node
            for node in rhs
        )
        if key[0] == transducer.initial and len(wrapped) != 1:
            wrapped = (RhsSym(hash_symbol, wrapped),)
        new_rules[key] = wrapped
    return TreeTransducer(
        transducer.states,
        transducer.alphabet | {hash_symbol},
        transducer.initial,
        new_rules,
    )


def _as_input_nta(schema: Schema) -> NTA:
    return dtd_to_nta(schema) if isinstance(schema, DTD) else schema


def _as_output_dtac(schema: Schema, check: bool) -> NTA:
    if isinstance(schema, DTD):
        return dtd_to_dtac(schema)
    if check:
        from repro.tree_automata.ops import is_bottom_up_deterministic, is_complete

        if not is_bottom_up_deterministic(schema):
            raise ClassViolationError("output automaton is not deterministic")
        if not is_complete(schema):
            raise ClassViolationError("output automaton is not complete")
    return schema


class DelrelabSchema:
    """Per-``(ain, aout)`` compiled artifacts of the Theorem 20 pipeline.

    Owns the schema-side constructions the pipeline otherwise redoes per
    call: the DTD→NTA / DTD→DTAc conversions (with the output-class check
    run exactly once), the productive-state fixpoint of the input
    automaton, and — per placeholder symbol — the complemented output
    automaton with its #-elimination lift.  A warm session shares one
    instance across transducers; standalone calls build a private one.
    """

    def __init__(self, ain: Schema, aout: Schema, check_output_class: bool = True) -> None:
        self.ain = ain
        self.aout = aout
        self.check_output_class = check_output_class
        self.input_nta = _as_input_nta(ain)
        self.output_dtac = _as_output_dtac(aout, check_output_class)
        self._productive = None
        self._complement: Optional[NTA] = None
        self._lift: dict = {}
        self.compiled = False

    def productive_witness(self):
        """``(productive states, witness)`` of the input NTA (memoized)."""
        if self._productive is None:
            from repro.tree_automata.emptiness import productive_states

            self._productive = productive_states(self.input_nta)
        return self._productive

    def lifted_complement(self, hash_symbol: str) -> NTA:
        """``B_out`` of Theorem 20: the #-elimination lift of the
        complemented output automaton.

        The complement is symbol-independent and memoized once; only the
        lift is per placeholder symbol (a transducer whose alphabet forces
        a fresh symbol pays the lift, never the complement again).
        """
        cached = self._lift.get(hash_symbol)
        if cached is None:
            if self._complement is None:
                self._complement = complement_dtac(self.output_dtac, check=False)
            cached = hash_elimination_lift(self._complement, hash_symbol)
            self._lift[hash_symbol] = cached
        if self._productive is not None:
            # Every schema-side artifact of the pipeline now exists; lazy
            # first calls warm the context just like an explicit warm().
            self.compiled = True
        return cached

    def free_hash_symbol(self, *alphabets) -> str:
        """A placeholder symbol foreign to both schema alphabets and every
        extra alphabet given (the lift requires it to be fresh)."""
        hash_symbol = HASH
        while (
            hash_symbol in self.input_nta.alphabet
            or hash_symbol in self.output_dtac.alphabet
            or any(hash_symbol in alphabet for alphabet in alphabets)
        ):
            hash_symbol += "#"
        return hash_symbol

    def warm(self) -> "DelrelabSchema":
        """Eagerly run the conversions, fixpoint and default-# lift."""
        if self.compiled:
            return self
        self.productive_witness()
        self.lifted_complement(self.free_hash_symbol())
        self.compiled = True
        return self


def _roots_without_initial_rule(
    transducer: TreeTransducer, ain: NTA, productive_witness=None
) -> Optional[str]:
    """A root symbol realizable by ``ain`` for which ``T`` has no initial
    rule, or ``None``."""
    from repro.tree_automata.emptiness import productive_states

    if productive_witness is None:
        productive_witness = productive_states(ain)
    productive, witness = productive_witness
    for state in sorted(productive & ain.finals, key=repr):
        symbol, _ = witness[state]
        if (transducer.initial, symbol) not in transducer.rules:
            return symbol
    # Witnesses record one symbol per state; scan all rules for other roots.
    for (state, symbol), nfa in ain.delta.items():
        if state not in ain.finals:
            continue
        if (transducer.initial, symbol) in transducer.rules:
            continue
        if nfa.some_word(productive) is not None:
            return symbol
    return None


def _non_tree_elimination_detector(alphabet, hash_symbol: str) -> NTA:
    """An NTA accepting the trees over ``alphabet`` whose #-elimination is
    *not* a single tree (the empty hedge or a hedge of ≥ 2 trees).

    Such outputs conform to no tree schema, so they are violations that the
    #-elimination lift — which by construction only speaks about single-tree
    eliminations — cannot flag.  States count a subtree's elimination length
    capped at two: a Σ-node always eliminates to one tree; a #-node sums its
    children.  Accepting roots are lengths 0 and ≥ 2.
    """
    states = frozenset({0, 1, 2})
    sigma = frozenset(alphabet) - {hash_symbol}
    delta = {}
    universal = NFA.universal(states)
    for symbol in sigma:
        delta[(1, symbol)] = universal
    # Children sum 0: only 0-length children.
    delta[(0, hash_symbol)] = NFA({"z"}, states, {"z": {0: {"z"}}}, {"z"}, {"z"})
    # Children sum exactly 1: 0* 1 0*.
    delta[(1, hash_symbol)] = NFA(
        {"a", "b"},
        states,
        {"a": {0: {"a"}, 1: {"b"}}, "b": {0: {"b"}}},
        {"a"},
        {"b"},
    )
    # Children sum ≥ 2: saturating counter.
    delta[(2, hash_symbol)] = NFA(
        {"a", "b", "c"},
        states,
        {
            "a": {0: {"a"}, 1: {"b"}, 2: {"c"}},
            "b": {0: {"b"}, 1: {"c"}, 2: {"c"}},
            "c": {0: {"c"}, 1: {"c"}, 2: {"c"}},
        },
        {"a"},
        {"c"},
    )
    return NTA(states, sigma | {hash_symbol}, delta, {0, 2})


def _witness_rooted(ain: NTA, symbol: str) -> Optional:
    """Some tree of ``L(ain)`` whose root is ``symbol``."""
    marker = fresh_symbol("root", [s for s in ain.states if isinstance(s, str)])
    any_state = (marker, "any")
    root_state = (marker, "root")
    wrapped = ain.map_states(lambda q: ("base", q))
    states = set(wrapped.states) | {any_state, root_state}
    delta = dict(wrapped.delta)
    universal = NFA.universal({any_state}).with_alphabet(states)
    for a in ain.alphabet:
        delta[(any_state, a)] = universal
    delta[(root_state, symbol)] = universal
    selector = NTA(states, ain.alphabet, delta, {root_state})
    return witness_tree(intersect(wrapped, selector))


def typecheck_delrelab(
    transducer: TreeTransducer,
    ain: Schema,
    aout: Schema,
    check_output_class: bool = True,
    schema: Optional[DelrelabSchema] = None,
) -> TypecheckResult:
    """PTIME typechecking for ``TC[T_del-relab, DTAc(DFA)]`` (Theorem 20).

    ``ain`` may be any NTA (or DTD); ``aout`` must be a DTAc (or a DTD,
    which is completed into one).  On rejection the result carries the
    *output-side* witness: a tree ``t' ∈ T'(L(A_in))`` with
    ``γ(t') ∉ L(A_out)`` (stats key ``"violating_output"``); input-side
    counterexamples for DTD schemas are available via the forward engine.

    ``schema`` is a :class:`DelrelabSchema` compiled for exactly these
    schema objects (a warm session passes its own; omitted, one is built
    here — including the class checks, as before).
    """
    analysis = analyze(transducer)
    if not analysis.is_del_relab:
        raise ClassViolationError(
            "transducer has an rhs with more than one state (not T_del-relab)"
        )

    if schema is None:
        schema = DelrelabSchema(ain, aout, check_output_class)
    input_nta = schema.input_nta
    stats = {"input_states": len(input_nta.states)}

    bad_root = _roots_without_initial_rule(
        transducer, input_nta, schema.productive_witness()
    )
    if bad_root is not None:
        witness = _witness_rooted(input_nta, bad_root)
        return TypecheckResult(
            False,
            "delrelab",
            counterexample=witness,
            reason=(
                f"inputs rooted {bad_root!r} translate to the empty hedge "
                "(no initial rule)"
            ),
            stats=stats,
        )

    # Foreign to the transducer's alphabet too (the lift additionally
    # requires freshness w.r.t. the output automaton — the seed raised an
    # InvalidSchemaError when '#' occurred there).
    hash_symbol = schema.free_hash_symbol(transducer.alphabet)
    wrapped = wrap_deleting_states(transducer, hash_symbol)
    b_in = image_nta(input_nta, wrapped)
    b_out = schema.lifted_complement(hash_symbol)
    product = intersect(b_in, b_out)
    stats["product_states"] = len(product.states)

    violating = witness_tree(product)
    reason = "some translated tree violates the output automaton"
    if violating is None:
        # The lift only speaks about single-tree eliminations; a root-deleting
        # rule can also translate an input to the empty hedge or a hedge of
        # several trees — not a tree at all, hence a violation of any tree
        # schema.  Catch those with the non-tree-elimination detector.
        detector = _non_tree_elimination_detector(b_in.alphabet, hash_symbol)
        violating = witness_tree(intersect(b_in, detector))
        reason = "some input translates to a non-tree hedge (root deletion)"
    if violating is None:
        return TypecheckResult(True, "delrelab", stats=stats)
    gamma = eliminate_hashes(violating, hash_symbol)
    stats["violating_output"] = gamma[0] if len(gamma) == 1 else gamma
    return TypecheckResult(
        False,
        "delrelab",
        reason=reason,
        stats=stats,
    )
