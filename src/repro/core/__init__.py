"""Typechecking — the paper's primary contribution.

* :mod:`~repro.core.problem` — instance/result types (Definition 9);
* :mod:`~repro.core.reachability` — reachable ``(state, symbol)`` pairs with
  provenance for counterexample contexts;
* :mod:`~repro.core.forward` — the Lemma 14 engine: a demand-driven fixpoint
  over behavior tuples, PTIME for every class ``T^{C,K}_trac`` (Theorem 15);
* :mod:`~repro.core.cex_nta` — the reachable part of Lemma 14's
  counterexample NTA, assembled from the forward tables; powers
  counterexample generation (Corollary 38) and almost-always typechecking
  (Corollary 39);
* :mod:`~repro.core.delrelab` — the Theorem 20 pipeline for
  ``TC[T_del-relab, DTAc(DFA)]``;
* :mod:`~repro.core.replus` — the Section 5 algorithms for
  ``TC[T_d,c, DTD(RE+)]`` (Theorem 37): the grammar route and the
  two-witness ``t_min``/``t_vast`` route on DAGs;
* :mod:`~repro.core.bruteforce` — the enumeration oracle used in tests;
* :mod:`~repro.core.api` — one-call dispatcher.
"""

from repro.core.problem import TypecheckResult
from repro.core.forward import typecheck_forward
from repro.core.cex_nta import counterexample_nta
from repro.core.almost_always import typechecks_almost_always
from repro.core.delrelab import typecheck_delrelab
from repro.core.replus import typecheck_replus, typecheck_replus_witnesses
from repro.core.bruteforce import typecheck_bruteforce
from repro.core.api import typecheck

__all__ = [
    "TypecheckResult",
    "typecheck",
    "typecheck_forward",
    "typecheck_delrelab",
    "typecheck_replus",
    "typecheck_replus_witnesses",
    "typecheck_bruteforce",
    "counterexample_nta",
    "typechecks_almost_always",
]
