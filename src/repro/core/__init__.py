"""Typechecking — the paper's primary contribution.

* :mod:`~repro.core.problem` — instance/result types (Definition 9);
* :mod:`~repro.core.reachability` — reachable ``(state, symbol)`` pairs with
  provenance for counterexample contexts;
* :mod:`~repro.core.forward` — the Lemma 14 engine: a demand-driven fixpoint
  over behavior tuples, PTIME for every class ``T^{C,K}_trac`` (Theorem 15);
* :mod:`~repro.core.cex_nta` — the reachable part of Lemma 14's
  counterexample NTA, assembled from the forward tables; powers
  counterexample generation (Corollary 38) and almost-always typechecking
  (Corollary 39);
* :mod:`~repro.core.delrelab` — the Theorem 20 pipeline for
  ``TC[T_del-relab, DTAc(DFA)]``;
* :mod:`~repro.core.replus` — the Section 5 algorithms for
  ``TC[T_d,c, DTD(RE+)]`` (Theorem 37): the grammar route and the
  two-witness ``t_min``/``t_vast`` route on DAGs;
* :mod:`~repro.core.bruteforce` — the enumeration oracle used in tests;
* :mod:`repro.backward` (re-exported here) — the classical *backward*
  route: inverse type inference of the bad-output pre-image, decided as
  kernel product-emptiness against the input schema — an independent
  oracle for every forward verdict (``method="backward"``);
* :mod:`~repro.core.session` — compiled sessions: warm schema pairs, batch
  typechecking, the in-process session registry;
* :mod:`~repro.core.api` — one-call dispatcher (a facade over sessions).
"""

from repro.core.problem import TypecheckResult
from repro.core.forward import ForwardSchema, typecheck_forward
from repro.core.cex_nta import counterexample_nta
from repro.core.almost_always import typechecks_almost_always
from repro.core.delrelab import DelrelabSchema, typecheck_delrelab
from repro.core.replus import (
    ReplusSchema,
    typecheck_replus,
    typecheck_replus_witnesses,
)
from repro.core.bruteforce import typecheck_bruteforce
from repro.core.session import Session, clear_registry, compile, registry_info
from repro.core.api import typecheck

# Imported last: repro.backward reads repro.core.problem, which the lines
# above have fully initialized by now (session itself binds it lazily).
from repro.backward import BackwardSchema, typecheck_backward

__all__ = [
    "BackwardSchema",
    "DelrelabSchema",
    "ForwardSchema",
    "ReplusSchema",
    "Session",
    "TypecheckResult",
    "clear_registry",
    "compile",
    "counterexample_nta",
    "registry_info",
    "typecheck",
    "typecheck_backward",
    "typecheck_bruteforce",
    "typecheck_delrelab",
    "typecheck_forward",
    "typecheck_replus",
    "typecheck_replus_witnesses",
    "typechecks_almost_always",
]
