"""Compiled typechecking sessions — warm schema pairs and batch checking.

In every realistic deployment the schemas are fixed while transducers and
documents vary (Martens & Neven make the same observation at the complexity
level in the fixed-schema follow-up paper): a server holds one warm kernel
per ``(Sin, Sout)`` pair and answers many typechecking queries against it.
This module is that deployment shape as an API:

* :class:`Session` — ``repro.compile(sin, sout)`` (equivalently
  ``Session(sin, sout)``) eagerly builds and owns every schema-derived
  kernel artifact: interned alphabets and content DFAs, productive sets,
  completed output DFAs, DTD→NTA forms, the reachability word caches, and
  the forward engine's shared σ-independent fixpoint cells with their
  persistent :class:`~repro.kernel.product.ProductBFS` graphs.  Repeated
  calls — ``session.typecheck(T)``, ``session.typecheck_many(Ts)``,
  ``session.counterexample(T)``, ``session.analysis(T)`` — skip all of it.

* an **in-process registry** keyed by schema/option *content hashes*
  (:meth:`~repro.schemas.dtd.DTD.content_hash`), consulted by
  :func:`compile` and hence by the one-shot
  :func:`repro.core.api.typecheck` facade: calling ``typecheck`` twice with
  equal schemas — even distinct Python objects — transparently reuses the
  warm session.  The one-shot API is unchanged, just faster on repeat.

* an optional **on-disk artifact cache** (:mod:`repro.cache`): pass
  ``cache_dir`` to :func:`compile` and the pickled schema artifacts are
  keyed by the same content hashes with versioned invalidation, so a fresh
  process skips schema compilation entirely.

**Thread safety.**  The registry is *process-global* behind a lock, so
every thread (and every request handler in a service worker) shares one
warm session per schema pair instead of silently recompiling per thread —
the seed's thread-local registry paid a full schema compilation in every
new thread.  A :class:`Session` itself is thread-safe by coarse
serialization: each public call (``warm`` / ``typecheck`` /
``typecheck_many`` / ``counterexample`` / ``analysis`` / the NTA exports)
holds the session's internal lock for its duration, because the shared
fixpoint cells mutate during typechecking.  Calls on one session therefore
never run concurrently — for CPU parallelism use one session per *process*
(:mod:`repro.service`), not per thread; the GIL makes intra-process
parallel typechecking a non-goal.
"""

from __future__ import annotations

import inspect
import os
import threading
import time
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Tuple, Union
from weakref import WeakKeyDictionary

from repro.errors import BudgetExceededError, ClassViolationError
from repro.obs import explain as _explain
from repro.obs import metrics as _metrics
from repro.obs import record_router_decision
from repro.obs import trace as _trace
from repro.core.problem import TypecheckResult
from repro.engines import (
    Engine,
    get_engine,
    persistent_engines,
    routable_engines,
    shardable_engines,
)
from repro.engines import engines as registered_engines
from repro.schemas.dtd import DTD
from repro.transducers.analysis import TransducerAnalysis, analyze
from repro.transducers.rhs import RhsSym
from repro.transducers.transducer import TreeTransducer
from repro.tree_automata.nta import NTA
from repro.trees.tree import Tree

Schema = Union[DTD, NTA]

#: Default node budget of the forward engine (mirrors ``typecheck_forward``).
DEFAULT_MAX_PRODUCT_NODES = 500_000

# ----------------------------------------------------------------------
# Structural footprint weights (bytes per unit)
# ----------------------------------------------------------------------
# Rough pickled-size-per-unit constants behind Session._structural_bytes:
# the structural estimate replaces the old throttled re-pickling of whole
# sessions on the eviction path (ROADMAP open item).  The absolute scale
# only needs to be right within a small factor — eviction decisions are
# *relative* — and the base is periodically re-calibrated against the
# true pickled size (see Session.footprint_bytes).
_NODE_BYTES = 90          # one interned product node (small int tuple)
_EDGE_BYTES = 150         # one recorded product edge (2 nodes + label)
_ACCEPT_BYTES = 220       # one accepted π with its witness child word
_TAU_BYTES = 120          # one tree-cell τ entry (table + order + index)
_SNAPSHOT_BYTES = 400     # per-transducer snapshot bookkeeping
_WITNESS_DAG_BYTES = 2000  # one RE+ witness DAG pair
_DELRELAB_BYTES = 4000    # one compiled del-relab context


def schema_fingerprint(schema: Schema) -> str:
    """Stable content hash of a schema, prefixed by its representation."""
    if isinstance(schema, DTD):
        return f"dtd:{schema.content_hash()}"
    if isinstance(schema, NTA):
        return f"nta:{schema.content_hash()}"
    raise TypeError(f"not a schema: {schema!r}")


def _options_fingerprint(options: Dict[str, object]) -> str:
    return repr(sorted(options.items()))


# ----------------------------------------------------------------------
# Per-method kwarg validation (delegated to the engine registry)
# ----------------------------------------------------------------------
def allowed_kwargs(method: str) -> frozenset:
    """The per-call option names ``typecheck(method=...)`` accepts.

    Delegates to the engine registry, which memoizes the signature
    inspection *per engine* — one ``inspect.signature`` call per process,
    never one per typecheck.
    """
    return get_engine(method).allowed_kwargs()


def validate_method_kwargs(method: str, kwargs: Dict[str, object]) -> None:
    """Reject options the selected method does not understand.

    The seed API silently forwarded unknown ``**kwargs`` into the per-method
    functions, producing a bare ``TypeError`` from deep inside the call (or,
    worse, a typo'd option being dropped by a dispatch branch that never
    forwarded it).  This names the offending option and lists the valid ones.
    """
    get_engine(method).validate_kwargs(kwargs)


def _call_compute_shards(compute_shards, partitions, method: str):
    """Invoke a shard fan-out callback, new- or old-style.

    Callbacks that can take a second positional argument receive the
    resolved engine (``compute_shards(partitions, method)``) — what a
    ``method="auto"`` caller needs to compute the right engine's tables;
    the classic single-parameter forward callbacks are called unchanged.
    """
    try:
        params = list(inspect.signature(compute_shards).parameters.values())
    except (TypeError, ValueError):  # builtins/C callables: assume classic
        return compute_shards(partitions)
    positional = [
        p
        for p in params
        if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
    ]
    if len(positional) >= 2 or any(
        p.kind is p.VAR_POSITIONAL for p in params
    ):
        return compute_shards(partitions, method)
    return compute_shards(partitions)


def _reject_max_tuple(method: str, max_tuple: Optional[int]) -> None:
    if max_tuple is not None:
        raise TypeError(
            f"option 'max_tuple' is not supported by method {method!r} "
            "(it bounds the forward engine's behavior tuples)"
        )


# ----------------------------------------------------------------------
# Session
# ----------------------------------------------------------------------
class Session:
    """A compiled typechecking session for one ``(sin, sout)`` schema pair.

    Construction eagerly compiles the schema-derived artifacts applicable
    to the pair (``eager=False`` defers each to first use; the facade uses
    that so one-shot calls never pay for artifacts they do not touch).  All
    per-method entry points accept the same options as the corresponding
    ``typecheck_*`` functions; ``use_kernel`` and ``max_product_nodes``
    default to the session-level options.

    The public surface:

    ``typecheck(T, method="auto", ...)``
        One result, same semantics as :func:`repro.typecheck`.
    ``typecheck_many(Ts, ...)``
        A list of results, one per transducer, against the warm pair.
    ``counterexample(T, ...)``
        The counterexample input tree (or ``None`` when ``T`` typechecks).
    ``analysis(T)``
        The Proposition 16 :class:`TransducerAnalysis` (memoized; XPath/DFA
        calls are compiled away first, as in ``method="auto"``).
    """

    def __init__(
        self,
        sin: Schema,
        sout: Schema,
        *,
        use_kernel: bool = True,
        max_product_nodes: int = DEFAULT_MAX_PRODUCT_NODES,
        eager: bool = True,
    ) -> None:
        self.sin = sin
        self.sout = sout
        self.use_kernel = use_kernel
        # The default per-call node budget.  Deliberately NOT part of the
        # session identity: no compiled artifact depends on it (shared
        # ProductBFS budgets are refreshed per call, and a budget abort
        # resets the shared cells), so retrying a BudgetExceededError with
        # a larger ``max_product_nodes`` kwarg stays warm.
        self.max_product_nodes = max_product_nodes
        self.options: Dict[str, object] = {"use_kernel": use_kernel}
        self.key: Tuple[str, str, str] = session_key(sin, sout, self.options)
        self.stats: Dict[str, object] = {
            "source": "fresh",
            "calls": 0,
            "registry_hits": 0,
            "compile_s": 0.0,
        }
        # Coarse per-session lock: public calls serialize on it, making a
        # shared session safe to hand to multiple threads (see the module
        # docstring — the registry is process-global).
        self._lock = threading.RLock()
        self._dtd_pair_value = (
            (sin, sout) if isinstance(sin, DTD) and isinstance(sout, DTD) else None
        )
        self._replus_pair = (
            self._dtd_pair_value is not None
            and sin.kind == "RE+"
            and sout.kind == "RE+"
        )
        # Compiled per-engine schema contexts, keyed by the engine's
        # registry ``schema_slot`` and per-call variant (the del-relab
        # class-check flag; ``None`` for single-variant engines).  One
        # generic store instead of one attribute per engine: a new
        # registered engine needs no session change at all.
        self._schemas: Dict[Tuple[str, object], object] = {}
        # Per-transducer memo: T -> (call-compiled T, analysis).  Weak keys
        # so a session never pins a client's transducers in memory.
        self._analyses: "WeakKeyDictionary[TreeTransducer, Tuple[TreeTransducer, TransducerAnalysis]]" = (
            WeakKeyDictionary()
        )
        # Auto-route memo: content hash -> (choice, {engine: cost ms}).
        # The decision is deterministic given the (fixed) schema pair, so
        # a serving session pays the key scans once per transducer.
        self._auto_routes: Dict[str, Tuple[str, Dict[str, float]]] = {}
        # (calibrated base bytes, structural estimate at calibration) —
        # see footprint_bytes().
        self._footprint: Optional[Tuple[int, int]] = None
        if eager:
            self.warm()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Session({self.sin!r} -> {self.sout!r}, "
            f"source={self.stats['source']}, calls={self.stats['calls']})"
        )

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def warm(self) -> "Session":
        """Eagerly compile every artifact applicable to the schema pair.

        Iterates the engine registry in registration order — ``forward``
        before ``backward`` matters (the backward warm-up is near-free
        once the shared DTD-level automata are compiled), and each
        engine's ``should_warm`` gates on the pair (``replus`` only on
        RE⁺ pairs; ``delrelab`` only where Theorem 20 is the sole route).
        """
        with self._lock, _trace.span(
            "compile", source=str(self.stats["source"])
        ):
            start = time.perf_counter()
            for engine in registered_engines():
                if engine.should_warm(self):
                    engine.schema(self).warm()
            self.stats["compile_s"] = float(self.stats["compile_s"]) + (
                time.perf_counter() - start
            )
            return self

    def _dtd_pair(self) -> Tuple[DTD, DTD]:
        if self._dtd_pair_value is None:
            raise ClassViolationError(
                "this method needs DTD schemas (tree automata are supported "
                "by method='delrelab')"
            )
        return self._dtd_pair_value

    def engine_schema(self, engine: Engine, variant=None):
        """The compiled schema context of ``engine`` for this pair (built
        on first use, cached per ``(schema_slot, variant)``)."""
        slot = (engine.schema_slot, variant)
        ctx = self._schemas.get(slot)
        if ctx is None:
            ctx = engine.build_schema(self, variant)
            self._schemas[slot] = ctx
        return ctx

    def forward_schema(self):
        """The compiled :class:`~repro.core.forward.ForwardSchema` (built
        on first use)."""
        return self.engine_schema(get_engine("forward"))

    def backward_schema(self):
        """The compiled :class:`~repro.backward.BackwardSchema` (built on
        first use)."""
        return self.engine_schema(get_engine("backward"))

    def replus_schema(self):
        """The compiled :class:`~repro.core.replus.ReplusSchema` (built on
        first use)."""
        return self.engine_schema(get_engine("replus"))

    def delrelab_schema(self, check_output_class: bool = True):
        """The compiled :class:`~repro.core.delrelab.DelrelabSchema`
        (built on first use, cached per class-check flag)."""
        return self.engine_schema(
            get_engine("delrelab"), bool(check_output_class)
        )

    # Structural-footprint / cache views of the generic schema store.
    @property
    def _forward(self):
        return self._schemas.get(("forward", None))

    @property
    def _backward(self):
        return self._schemas.get(("backward", None))

    @property
    def _replus(self):
        return self._schemas.get(("replus", None))

    @property
    def _delrelab(self) -> Dict[bool, object]:
        return {
            variant: ctx
            for (slot, variant), ctx in self._schemas.items()
            if slot == "delrelab"
        }

    # ------------------------------------------------------------------
    # Transducer-side memo
    # ------------------------------------------------------------------
    def _compiled_transducer(
        self, transducer: TreeTransducer
    ) -> Tuple[TreeTransducer, TransducerAnalysis]:
        cached = self._analyses.get(transducer)
        if cached is None:
            plain = transducer
            if transducer.uses_calls():
                from repro.xpath.compile import compile_calls

                plain = compile_calls(transducer)
            cached = (plain, analyze(plain))
            self._analyses[transducer] = cached
        return cached

    def analysis(self, transducer: TreeTransducer) -> TransducerAnalysis:
        """The Proposition 16 analysis of ``T`` (calls compiled away)."""
        with self._lock:
            return self._compiled_transducer(transducer)[1]

    # ------------------------------------------------------------------
    # Typechecking
    # ------------------------------------------------------------------
    def typecheck(
        self,
        transducer: TreeTransducer,
        method: str = "auto",
        max_tuple: Optional[int] = None,
        explain: bool = False,
        **kwargs,
    ) -> TypecheckResult:
        """Decide ``T(t) ∈ Sout`` for every ``t ∈ Sin`` against the warm
        pair; same semantics and options as :func:`repro.typecheck`.
        Thread-safe: the call holds the session lock for its duration.

        ``explain=True`` additionally attaches a
        :class:`repro.obs.explain.QueryReport` as ``result.report``:
        engine routing with every predicted cost, cache provenance, and
        this query's own kernel counters (delta-scoped around the run).
        The verdict is identical either way.
        """
        with self._lock:
            if not explain:
                return self._typecheck(transducer, method, max_tuple, **kwargs)
            with _explain.query_scope() as scope:
                start = time.perf_counter()
                result = self._typecheck(transducer, method, max_tuple, **kwargs)
                measured_ms = (time.perf_counter() - start) * 1e3
            result.report = _explain.build_report(
                "typecheck",
                method=method,
                result=result,
                measured_ms=measured_ms,
                scope=scope,
                predicted_ms=self._predicted_costs(transducer),
                session_source=str(self.stats.get("source", "")) or None,
            )
            return result

    def _predicted_costs(self, transducer: TreeTransducer) -> Dict[str, float]:
        """Every routable engine's predicted ms for ``T`` (the auto
        router's memoized view), or ``{}`` off the routable plane."""
        try:
            if self._dtd_pair_value is None or self._replus_pair:
                return {}
            plain, analysis = self._compiled_transducer(transducer)
            if not analysis.in_trac:
                return {}
            _choice, costs = self._auto_choice(plain)
            return dict(costs)
        except Exception:  # noqa: BLE001 - explain must never fail a query
            return {}

    def _typecheck(
        self,
        transducer: TreeTransducer,
        method: str = "auto",
        max_tuple: Optional[int] = None,
        **kwargs,
    ) -> TypecheckResult:
        self.stats["calls"] = int(self.stats["calls"]) + 1
        if method != "auto":
            # Explicit methods dispatch straight through the registry —
            # there is no per-engine branch here: a newly registered
            # engine is callable by name immediately.
            engine = get_engine(method)
            engine.validate_kwargs(kwargs)
            if not engine.accepts_max_tuple:
                _reject_max_tuple(method, max_tuple)
            return engine.typecheck(self, transducer, max_tuple, kwargs)

        # "auto": the paper's algorithm selection (api module docstring).
        # ``max_tuple`` is auto's "force the forward engine" escape hatch,
        # so it is not rejected here — only explicit methods are strict.
        if self._replus_pair:
            result = self._run_auto("replus", transducer, None, kwargs)
            return result
        plain, analysis = self._compiled_transducer(transducer)
        if self._dtd_pair_value is not None and max_tuple is not None:
            # The escape hatch always means the forward engine: a caller
            # bounding the tuple width is asking for the (possibly
            # exponential) forward run, never a routed alternative.
            return self._run_auto("forward", plain, max_tuple, kwargs)
        if self._dtd_pair_value is not None and analysis.in_trac:
            # Every routable (complete, cost-modelled) engine applies:
            # route by measurable schema shape.  Each engine's shard cost
            # model is summed over its own check keys, weighed by its
            # calibrated per-unit runtime, and the cheapest predicted
            # wall time runs; an option foreign to the chosen engine
            # (use_kernel, max_tuple above) pins the route to forward.
            choice, costs = self._auto_choice(plain)
            if choice != "forward" and any(
                name not in get_engine(choice).allowed_kwargs()
                for name in kwargs
            ):
                choice = "forward"
            route_start = time.perf_counter()
            result = self._run_auto(choice, plain, None, kwargs)
            # Router audit: predicted vs. measured cost of this decision —
            # the data needed to re-fit the engines' ms_per_unit weights.
            record_router_decision(
                choice,
                actual_ms=round(
                    (time.perf_counter() - route_start) * 1e3, 3
                ),
                predicted_ms={
                    name: round(cost, 3) for name, cost in costs.items()
                },
                transducer=plain.content_hash()[:12],
            )
            for name, cost in costs.items():
                result.stats[f"auto_{name}_cost"] = round(cost, 3)
            return result
        if analysis.is_del_relab:
            return self._run_auto("delrelab", plain, None, kwargs)
        if self._dtd_pair_value is not None:
            # Out of every T^{C,K}_trac over DTDs: the forward engine
            # would raise ClassViolationError, but inverse type inference
            # is complete for any deterministic top-down transducer over
            # DTDs (budget-guarded), so auto falls back to it instead of
            # refusing the instance.
            return self._run_auto("backward", plain, None, kwargs)
        raise ClassViolationError(
            "instance crosses the tractability frontier: the transducer has "
            f"copying width {analysis.copying_width} and "
            f"{'unbounded' if analysis.deletion_path_width is None else analysis.deletion_path_width} "
            "deletion path width, and the schemas are "
            f"{type(self.sin).__name__}/{type(self.sout).__name__}. "
            "Options: restrict the transducer (Theorem 15/20), use "
            "DTD(RE+) schemas (Theorem 37), use DTD schemas to enable "
            "method='backward' (inverse type inference — complete for any "
            "deterministic top-down transducer over DTDs, budget-guarded), "
            "or pass max_tuple for a best-effort (possibly exponential) "
            "run of the forward engine."
        )

    def _run_auto(
        self,
        choice: str,
        transducer: TreeTransducer,
        max_tuple: Optional[int],
        kwargs: Dict[str, object],
    ) -> TypecheckResult:
        """Run the engine the auto policy picked, stamping the choice."""
        engine = get_engine(choice)
        engine.validate_kwargs(kwargs)
        result = engine.typecheck(self, transducer, max_tuple, kwargs)
        result.stats["auto_method"] = choice
        return result

    def _auto_choice(
        self, plain: TreeTransducer
    ) -> Tuple[str, Dict[str, float]]:
        """``(engine name, {engine: predicted ms})`` for the auto policy
        on an in-tractability DTD-pair instance.

        Sums each *routable* engine's shard cost model over its own check
        keys — the forward ``n_out^m`` tuple seeds plus amortized
        dependency-closure DFA sizes, against the backward per-symbol
        ``n_in_states × behavior-monoid`` products — weighs each total by
        its calibrated per-unit runtime (``Engine.ms_per_unit``, measured
        on the workload families; BENCH_auto.json re-derives the weights
        every run), and picks the smallest predicted wall time (ties go
        to the earliest registrant — forward, the paper's engine).  The
        models read *compiled schema shape only*, so the choice costs one
        key scan per engine, never a fixpoint.
        """
        memo_key = plain.content_hash()
        cached = self._auto_routes.get(memo_key)
        if cached is not None:
            return cached
        costs: Dict[str, float] = {}
        best: Optional[str] = None
        for engine in routable_engines():
            cost = float(engine.predict_cost_ms(self, plain))
            costs[engine.name] = cost
            if best is None or cost < costs[best]:
                best = engine.name
        route = (best, costs)
        self._auto_routes[memo_key] = route
        return route

    def _apply_defaults(self, kwargs: Dict[str, object]) -> None:
        kwargs.setdefault("use_kernel", self.use_kernel)
        kwargs.setdefault("max_product_nodes", self.max_product_nodes)

    # ------------------------------------------------------------------
    # Incremental re-typechecking (edit chains)
    # ------------------------------------------------------------------
    def retypecheck(
        self,
        transducer: TreeTransducer,
        base: TreeTransducer,
        method: str = "auto",
        max_tuple: Optional[int] = None,
        **kwargs,
    ) -> TypecheckResult:
        """Typecheck ``transducer`` as an *edit* of ``base``.

        Same verdict, counterexample semantics, and exceptions as
        :meth:`typecheck` of ``transducer`` alone — the differential
        suites enforce bit-identical results — but when ``base``'s
        fixpoint tables are warm in this session, only the cells whose
        dependency closure touches the edited rules are recomputed; the
        surviving cells (and their persisted kernel ``ProductBFS``
        frontiers) carry over.  The new tables are stored under the
        edited transducer's content hash, so chains of edits stay warm
        link to link.  ``method`` accepts ``auto`` (the usual routing,
        restricted to the two complete engines), ``forward``, or
        ``backward``; anything that the delta path cannot serve (cold
        base, non-DTD pair, ``use_kernel=False``, blown budgets, XPath
        calls, alphabet/behavior-shape changes) falls back to a plain
        cold check, reported in ``stats["retypecheck_mode"]``.

        ``explain=True`` attaches a :class:`repro.obs.explain.QueryReport`
        (including the retypecheck mode and reuse counters) as
        ``result.report``, exactly as :meth:`typecheck` does.
        """
        explain = bool(kwargs.pop("explain", False))
        with self._lock:
            if not explain:
                return self._retypecheck(
                    transducer, base, method, max_tuple, **kwargs
                )
            with _explain.query_scope() as scope:
                start = time.perf_counter()
                result = self._retypecheck(
                    transducer, base, method, max_tuple, **kwargs
                )
                measured_ms = (time.perf_counter() - start) * 1e3
            result.report = _explain.build_report(
                "retypecheck",
                method=method,
                result=result,
                measured_ms=measured_ms,
                scope=scope,
                predicted_ms=self._predicted_costs(transducer),
                session_source=str(self.stats.get("source", "")) or None,
            )
            return result

    def _retypecheck(
        self,
        transducer: TreeTransducer,
        base: TreeTransducer,
        method: str,
        max_tuple: Optional[int],
        **kwargs,
    ) -> TypecheckResult:
        if method != "auto":
            get_engine(method)  # unknown-method ValueError, same as typecheck

        def cold(reason: str, resolved: Optional[str] = None) -> TypecheckResult:
            result = self._typecheck(transducer, method, max_tuple, **dict(kwargs))
            result.stats["retypecheck_mode"] = "cold"
            result.stats["retypecheck"] = {
                "mode": "cold",
                "method": resolved or method,
                "reason": reason,
            }
            return result

        if kwargs.get("use_kernel") is False:
            return cold("object path requested")
        plain, analysis = self._compiled_transducer(transducer)

        # Resolve auto exactly as _typecheck's policy would, so the
        # resolved engine (and hence the reported mode) matches the run.
        if method == "auto":
            resolved = self._resolve_auto(plain, analysis, max_tuple, kwargs)
            if resolved is None:
                # Frontier-crossing instance: the cold call raises the
                # same ClassViolationError a plain typecheck would.
                return cold("instance crosses the tractability frontier")
        else:
            resolved = method
        engine = get_engine(resolved)

        if not engine.incremental:
            # No diffable tables for this engine — but the compiled schema
            # context (grammar views, witness DAGs, lifted automata) is
            # reusable when only the transducer changed: re-run against it
            # and report the schema-warm mode with the fallback reason.
            reason = engine.no_incremental_reason
            ctx = (
                engine.peek_schema(self, engine.schema_variant(kwargs))
                if engine.has_schema
                else None
            )
            if ctx is None or not getattr(ctx, "compiled", False):
                return cold(
                    reason if not engine.has_schema else "schema not compiled",
                    resolved,
                )
            result = self._typecheck(
                transducer, method, max_tuple, **dict(kwargs)
            )
            result.stats["retypecheck_mode"] = "warmed"
            result.stats["retypecheck"] = {
                "mode": "warmed",
                "method": resolved,
                "reason": reason,
            }
            return result

        # Incremental engines (forward/backward): diff the base snapshot.
        if self._dtd_pair_value is None or self._replus_pair:
            return cold("not a DTD pair", resolved)
        engine.validate_kwargs(kwargs)
        if not engine.accepts_max_tuple:
            _reject_max_tuple(resolved, max_tuple)
        din, dout = self._dtd_pair_value
        base_plain, _base_analysis = self._compiled_transducer(base)

        # The engines' preambles (empty input language, missing/ill-formed
        # root rule, wrong output root) answer before any fixpoint — a
        # cold call is free there and keeps exception parity exactly.
        root_rule = plain.rules.get((plain.initial, din.start))
        if (
            din.is_empty()
            or root_rule is None
            or len(root_rule) != 1
            or not isinstance(root_rule[0], RhsSym)
            or root_rule[0].label != dout.start
        ):
            return cold("preamble case", resolved)

        base_key = base_plain.content_hash()
        new_key = plain.content_hash()
        max_nodes = int(kwargs.get("max_product_nodes", self.max_product_nodes))

        base_tables = engine.cached_tables(self, base_key)
        tables = None
        info = None
        if base_tables is not None:
            with _trace.span(
                "retypecheck_diff", engine=resolved
            ) as diff_span:
                try:
                    out = engine.incremental_tables(
                        self, plain, base_plain, base_tables,
                        max_tuple=max_tuple, max_product_nodes=max_nodes,
                    )
                except BudgetExceededError:
                    return cold("incremental budget exceeded", resolved)
                if out is not None:
                    tables, info = out
                    diff_span.set(
                        **{k: v for k, v in info.items() if k != "mode"}
                    )
        if tables is None:
            # Cold link: engines whose plain run stores no tables (the
            # backward early-exit) saturate once so the next edit in the
            # chain has a base to diff against; for the others the cold
            # run itself stores tables under the new hash, warming the
            # *next* link by construction.
            try:
                tables = engine.saturate_tables(
                    self, plain, max_product_nodes=max_nodes
                )
            except BudgetExceededError:
                return cold("saturation budget exceeded", resolved)
            if tables is None:
                return cold(
                    "no base tables" if base_tables is None
                    else "delta path not applicable",
                    resolved,
                )
        engine.store_tables(self, new_key, tables)
        self.stats["calls"] = int(self.stats["calls"]) + 1
        result = engine.typecheck(self, plain, max_tuple, kwargs, tables=tables)
        if info is not None:
            result.stats["retypecheck_mode"] = "incremental"
            result.stats["retypecheck"] = dict(info, mode="incremental", method=resolved)
        else:
            result.stats["retypecheck_mode"] = "warmed"
            result.stats["retypecheck"] = {"mode": "warmed", "method": resolved}
        if method == "auto":
            result.stats.setdefault("auto_method", resolved)
        return result

    def _resolve_auto(
        self,
        plain: TreeTransducer,
        analysis: TransducerAnalysis,
        max_tuple: Optional[int],
        kwargs: Dict[str, object],
    ) -> Optional[str]:
        """The engine ``method="auto"`` resolves to for this instance
        (mirrors ``_typecheck``'s ladder), or ``None`` when auto would
        refuse it (the tractability frontier)."""
        if self._replus_pair:
            return "replus"
        if self._dtd_pair_value is not None and max_tuple is not None:
            return "forward"
        if self._dtd_pair_value is not None and analysis.in_trac:
            choice, _costs = self._auto_choice(plain)
            if choice != "forward" and any(
                name not in get_engine(choice).allowed_kwargs()
                for name in kwargs
            ):
                choice = "forward"
            return choice
        if analysis.is_del_relab:
            return "delrelab"
        if self._dtd_pair_value is not None:
            return "backward"
        return None

    def typecheck_many(
        self,
        transducers: Iterable[TreeTransducer],
        method: str = "auto",
        **kwargs,
    ) -> List[TypecheckResult]:
        """Typecheck a batch of transducers against the warm pair.

        All schema-side work is shared; per-transducer work (reachability,
        fixpoint tables) is still per item.  Errors propagate — callers
        needing per-item error capture should loop over :meth:`typecheck`.
        """
        return [
            self.typecheck(transducer, method=method, **kwargs)
            for transducer in transducers
        ]

    def counterexample(
        self,
        transducer: TreeTransducer,
        method: str = "auto",
        **kwargs,
    ) -> Optional[Tree]:
        """A counterexample input tree, or ``None`` when ``T`` typechecks."""
        return self.typecheck(transducer, method=method, **kwargs).counterexample

    # ------------------------------------------------------------------
    # Sharded forward fixpoint (the service's single-query fan-out)
    # ------------------------------------------------------------------
    def check_keys(
        self, transducer: TreeTransducer, method: str = "forward"
    ) -> List:
        """The shard units of ``T`` under ``method``'s engine (the keys
        the planners partition across workers)."""
        engine = get_engine(method)
        with self._lock:
            return engine.check_keys(self, transducer)

    def compute_shard_tables(
        self,
        transducer: TreeTransducer,
        keys,
        method: str = "forward",
        *,
        max_tuple: Optional[int] = None,
        max_product_nodes: Optional[int] = None,
    ) -> Dict[str, object]:
        """One shard of ``T``'s fixpoint under ``method``'s engine.

        Service workers call this for their partition of
        :meth:`check_keys`; the returned tables are picklable and merge
        with the engine's ``merge_tables``.  This is the single worker
        entry point for every shardable engine — the pool never branches
        on the method.

        When kernel metrics are enabled in this process the shard's own
        kernel counters ride back as ``tables["kernel_counters"]`` — the
        mergers ignore unknown keys, and ``typecheck_sharded`` pops them
        into the explain report's per-shard kernel section.
        """
        engine = get_engine(method)
        with self._lock:
            if not _metrics.kernel_metrics_enabled():
                return engine.compute_tables(
                    self, transducer, keys,
                    max_tuple=max_tuple, max_product_nodes=max_product_nodes,
                )
            with _metrics.registry.delta_scope() as scope:
                tables = engine.compute_tables(
                    self, transducer, keys,
                    max_tuple=max_tuple, max_product_nodes=max_product_nodes,
                )
            tables["kernel_counters"] = _explain.kernel_section(
                scope.counters, scope.gauges
            )
            return tables

    def forward_check_keys(self, transducer: TreeTransducer) -> List[Tuple]:
        """The hedge-cell keys of ``T``'s root checks (shard units)."""
        return self.check_keys(transducer, "forward")

    def compute_forward_tables(
        self,
        transducer: TreeTransducer,
        keys,
        *,
        max_tuple: Optional[int] = None,
        max_product_nodes: Optional[int] = None,
    ) -> Dict[str, object]:
        """One shard of ``T``'s forward fixpoint against the warm pair
        (see :meth:`compute_shard_tables`)."""
        return self.compute_shard_tables(
            transducer, keys, "forward",
            max_tuple=max_tuple, max_product_nodes=max_product_nodes,
        )

    def backward_check_keys(self, transducer: TreeTransducer) -> List[str]:
        """The input symbols of ``T``'s backward product cells (shard
        units — one per reachable input symbol)."""
        return self.check_keys(transducer, "backward")

    def compute_backward_tables(
        self,
        transducer: TreeTransducer,
        keys,
        *,
        max_product_nodes: Optional[int] = None,
    ) -> Dict[str, object]:
        """One shard of ``T``'s backward fixpoint against the warm pair
        (see :meth:`compute_shard_tables`)."""
        return self.compute_shard_tables(
            transducer, keys, "backward",
            max_product_nodes=max_product_nodes,
        )

    def shard_method(
        self,
        transducer: TreeTransducer,
        method: str = "auto",
        max_tuple: Optional[int] = None,
    ) -> str:
        """The engine a sharded run of ``T`` resolves to.

        ``"forward"`` and ``"backward"`` pass through; ``"auto"`` applies
        :meth:`typecheck`'s routing policy restricted to the two shardable
        engines — ``max_tuple`` forces forward (the escape hatch),
        out-of-tractability instances go backward (the forward engine
        would raise :class:`~repro.errors.ClassViolationError`), and
        in-tractability instances compare the two key-cost models.  The
        worker pool resolves the method here *before* fanning out, so
        every worker computes the right engine's tables.
        """
        shardable = [engine.name for engine in shardable_engines()]
        if method != "auto":
            if method not in shardable:
                raise ValueError(
                    f"unknown shard method {method!r}; valid: auto, "
                    + ", ".join(shardable)
                )
            return method
        with self._lock:
            self._dtd_pair()  # sharding needs a DTD pair either way
            plain, analysis = self._compiled_transducer(transducer)
            if max_tuple is not None:
                return "forward"
            if not analysis.in_trac:
                return "backward"
            choice, _costs = self._auto_choice(plain)
            return choice

    def typecheck_sharded(
        self,
        transducer: TreeTransducer,
        compute_shards,
        shards: int = 2,
        max_tuple: Optional[int] = None,
        planner: str = "cost",
        method: str = "forward",
        explain: bool = False,
        **kwargs,
    ) -> TypecheckResult:
        """Typecheck ``T`` with its fixpoint sharded across workers.

        ``explain=True`` attaches a :class:`repro.obs.explain.QueryReport`
        as ``result.report`` — the shard section carries the plan
        (planner, predicted loads, measured per-shard walls, spread) and,
        when the workers run with kernel metrics enabled, each shard's
        own kernel counters (``shard_kernel``); the top-level kernel
        section covers the serving process (plan + merge + final scan).

        ``method`` picks the engine to shard: ``"forward"`` (default, the
        original fan-out) partitions the hedge-cell check keys,
        ``"backward"`` partitions the per-input-symbol product cells, and
        ``"auto"`` resolves through :meth:`shard_method` (the cost-model
        routing).  ``compute_shards(partitions)`` maps a list of key
        partitions to the list of their table snapshots — the worker pool
        fans the partitions out across processes (each holding a warm
        session for this pair); tests pass a sequential implementation.
        A callback taking a second positional parameter receives the
        *resolved* method too (``compute_shards(partitions, method)``),
        which ``method="auto"`` callers need to compute the right engine's
        tables.  The merged tables then drive the root-check scan and
        counterexample construction here, so the verdict is exactly the
        unsharded engine's — the shards compute complete per-cell least
        fixpoints and the merge unions disjoint cells.  Partitioning never
        affects the verdict, only the balance, so the planner choice is a
        pure scheduling knob.

        ``planner`` selects the partitioner: ``"cost"`` (default)
        LPT-packs keys by their predicted cell cost (forward: tuple seeds
        plus amortized closure DFA sizes, see
        :func:`repro.core.forward.forward_key_costs`; backward:
        ``n_in_states × behavior-monoid``, see
        :func:`repro.backward.backward_key_costs`); ``"profile"``
        LPT-packs by *measured* per-key worker seconds fed back from the
        previous sharded run of an equal-content transducer on this warm
        pair, falling back to the cost model on first sight —
        ``stats["shard_profile"]`` records which source planned the run;
        ``"round-robin"`` is the blind positional split, kept for
        benchmarking the planners against.  Per-shard wall times come back
        in ``result.stats["shard_wall_s"]`` with the planner's predicted
        loads in ``stats["shard_costs"]``, so the balance is observable.
        Sharded runs record each key's *measured* fixpoint seconds
        (``key_elapsed_s``, timed per cell on the worker) for the next
        ``planner="profile"`` plan; when a snapshot predates per-key
        timing, the shard wall time is attributed to its keys
        proportionally to the model as before.
        """
        if not explain:
            return self._typecheck_sharded_impl(
                transducer, compute_shards, shards, max_tuple, planner,
                method, **kwargs
            )
        with _explain.query_scope() as scope:
            start = time.perf_counter()
            result = self._typecheck_sharded_impl(
                transducer, compute_shards, shards, max_tuple, planner,
                method, **kwargs
            )
            measured_ms = (time.perf_counter() - start) * 1e3
        with self._lock:
            predicted = self._predicted_costs(transducer)
            source = str(self.stats.get("source", "")) or None
        result.report = _explain.build_report(
            "typecheck_sharded",
            method=method,
            result=result,
            measured_ms=measured_ms,
            scope=scope,
            predicted_ms=predicted,
            session_source=source,
        )
        return result

    def _typecheck_sharded_impl(
        self,
        transducer: TreeTransducer,
        compute_shards,
        shards: int = 2,
        max_tuple: Optional[int] = None,
        planner: str = "cost",
        method: str = "forward",
        **kwargs,
    ) -> TypecheckResult:
        from repro.core.forward import plan_forward_shards

        with _trace.span("shard_plan", planner=planner) as plan_span:
            method = self.shard_method(transducer, method, max_tuple)
            engine = get_engine(method)
            if not engine.accepts_max_tuple:
                _reject_max_tuple(method, max_tuple)
            keys = self.check_keys(transducer, method)
            shards = max(1, min(int(shards), max(1, len(keys))))
            loads: Optional[List[float]] = None
            plan_costs: Optional[List[float]] = None
            profile_source: Optional[str] = None
            if planner == "round-robin":
                partitions: List[List] = [
                    keys[index::shards] for index in range(shards)
                ]
            elif planner in ("cost", "profile"):
                with self._lock:
                    plan_costs = list(
                        engine.key_costs(self, transducer, keys)
                    )
                    plan_schema = engine.schema(self)
                    if planner == "profile":
                        profile = plan_schema.shard_profile(
                            transducer.content_hash()
                        )
                        if profile is not None:
                            # Measured costs for the keys seen last time;
                            # the model covers any key the profile has not
                            # (the LPT only needs relative weights).
                            plan_costs = [
                                profile.get(key, cost)
                                for key, cost in zip(keys, plan_costs)
                            ]
                            profile_source = "measured"
                        else:
                            profile_source = "model"
                partitions, loads = plan_forward_shards(
                    keys, plan_costs, shards
                )
            else:
                raise ValueError(
                    f"unknown shard planner {planner!r}; "
                    "valid: cost, profile, round-robin"
                )
            plan_span.set(method=method, keys=len(keys), shards=len(partitions))
        engine.validate_kwargs(kwargs)
        if engine.kernel_sensitive and (
            "use_kernel" in kwargs
            and bool(kwargs["use_kernel"]) != self.use_kernel
        ):
            # Shard keys were canonicalized with the session's engine; an
            # engine flip here would look the merged cells up under
            # different keys.  The option is session-level for sharding.
            raise TypeError(
                "typecheck_sharded always runs the session's engine "
                f"(use_kernel={self.use_kernel}); build a "
                "Session(use_kernel=...) for the other engine"
            )
        snapshots = _call_compute_shards(compute_shards, partitions, method)
        # Per-shard kernel counters ride the snapshots under a key the
        # mergers ignore; pop them before merging so the explain report
        # can attribute work shard by shard.
        shard_kernel = [
            snapshot.pop("kernel_counters", None)
            for snapshot in snapshots
            if isinstance(snapshot, dict)
        ]
        with _trace.span("merge", method=method) as merge_span:
            tables = engine.merge_tables(snapshots)
            shard_wall = tables.pop("shard_elapsed_s", None)
            key_elapsed = tables.pop("key_elapsed_s", None)
            merge_span.set(shards=len(partitions))
            if key_elapsed:
                # Per-key measured fixpoint seconds — previously popped and
                # visible only to the profile planner; now on the span too.
                merge_span.set(
                    key_elapsed_s={
                        str(key): round(float(elapsed), 6)
                        for key, elapsed in key_elapsed.items()
                    }
                )
            with self._lock:
                self.stats["calls"] = int(self.stats["calls"]) + 1
                result = engine.typecheck(
                    self, transducer, max_tuple, kwargs, tables=tables
                )
        result.stats["shards"] = len(partitions)
        result.stats["shard_planner"] = planner
        result.stats["shard_method"] = method
        if profile_source is not None:
            result.stats["shard_profile"] = profile_source
        if loads is not None:
            result.stats["shard_costs"] = list(loads)
        if shard_wall:
            result.stats["shard_wall_s"] = [round(s, 6) for s in shard_wall]
            result.stats["shard_spread"] = round(
                max(shard_wall) / max(min(shard_wall), 1e-9), 3
            )
        if any(shard_kernel):
            result.stats["shard_kernel"] = [
                counters or {} for counters in shard_kernel
            ]
        # Feed the measurement back for the next planner="profile" run of
        # this transducer on this pair.  Workers time each key's fixpoint
        # individually now, so the profile is measured truth per key; the
        # proportional smear over the shard wall time survives only as the
        # fallback for snapshots that predate per-key timing.
        profile_out: Dict[object, float] = {}
        if key_elapsed:
            assigned = set(keys)
            profile_out = {
                key: float(elapsed)
                for key, elapsed in key_elapsed.items()
                if key in assigned
            }
        elif (
            shard_wall
            and plan_costs is not None
            and len(shard_wall) == len(partitions)
        ):
            cost_by_key = dict(zip(keys, plan_costs))
            for wall, partition in zip(shard_wall, partitions):
                total = sum(cost_by_key[key] for key in partition)
                if total <= 0:
                    total = len(partition) or 1
                    weights = {key: 1 for key in partition}
                else:
                    weights = cost_by_key
                for key in partition:
                    profile_out[key] = wall * weights[key] / total
        if profile_out:
            with self._lock:
                engine.schema(self).record_shard_profile(
                    transducer.content_hash(), profile_out
                )
        return result

    def counterexample_nta(
        self, transducer: TreeTransducer, max_tuple: Optional[int] = None
    ) -> NTA:
        """Lemma 14's counterexample automaton against the warm pair.

        Threads the session's compiled :class:`ForwardSchema` through
        :func:`repro.core.cex_nta.counterexample_nta`, so repeated
        Corollary 38/39 queries reuse the shared fixpoint cells and
        reachability caches instead of building private engines.
        """
        from repro.core.cex_nta import counterexample_nta

        with self._lock:
            din, dout = self._dtd_pair()
            plain, _analysis = self._compiled_transducer(transducer)
            return counterexample_nta(
                plain, din, dout, max_tuple,
                schema=self.forward_schema(), use_kernel=self.use_kernel,
            )

    def typechecks_almost_always(
        self, transducer: TreeTransducer, max_tuple: Optional[int] = None
    ) -> bool:
        """Corollary 39 against the warm pair (finitely many violations)."""
        from repro.core.almost_always import typechecks_almost_always

        with self._lock:
            din, dout = self._dtd_pair()
            plain, _analysis = self._compiled_transducer(transducer)
            return typechecks_almost_always(
                plain, din, dout, max_tuple,
                schema=self.forward_schema(), use_kernel=self.use_kernel,
            )

    # ------------------------------------------------------------------
    # Footprint (size-aware registry eviction)
    # ------------------------------------------------------------------
    #: Structural growth below this many bytes never triggers a pickled
    #: re-calibration (jitter floor for freshly compiled sessions).
    CALIBRATION_FLOOR_BYTES = 64 * 1024

    def _structural_bytes(self) -> int:
        """Structural estimate of the *variable* artifact state, in bytes.

        Counts fixpoint-cell nodes/edges/accepted tuples and
        per-transducer snapshots, weighted by per-unit byte constants (see
        the module-level ``_*_BYTES`` weights) — no serialization, so the
        walk is cheap enough for the per-request eviction path.  Cells
        aliased between the shared tables and per-transducer snapshots
        (exports share live objects) are counted once, matching how
        pickling would memo them; tree cells dedupe on their
        insertion-order *list* because ``export_forward_tables`` re-packs
        the shared containers into a fresh 4-tuple per snapshot.
        """
        units = 0
        forward = self._forward
        if forward is not None:
            seen: set = set()
            hedge_entries: List = []
            tree_cells: List = []

            def collect(hedge_map, tree_map) -> None:
                for entry in hedge_map.values():
                    if id(entry) not in seen:
                        seen.add(id(entry))
                        hedge_entries.append(entry)
                for cell in tree_map.values():
                    order = cell[2]
                    if id(order) not in seen:
                        seen.add(id(order))
                        tree_cells.append(cell)

            collect(forward.shared_hedge, forward.shared_tree)
            for tables in forward.transducer_tables.values():
                collect(tables.get("hedge") or {}, tables.get("tree") or {})
            for entry in hedge_entries:
                nodes = (
                    len(entry.engine.parents)
                    if entry.engine is not None
                    else len(entry.accepted)
                )
                units += (
                    _NODE_BYTES * nodes
                    + _EDGE_BYTES * len(entry.int_edges)
                    + _ACCEPT_BYTES * len(entry.int_accepted_list)
                )
            for cell in tree_cells:
                units += _TAU_BYTES * len(cell[2])  # insertion-order list
            units += _SNAPSHOT_BYTES * len(forward.transducer_tables)
        backward = self._backward
        if backward is not None:
            for snapshot in backward.transducer_results.values():
                units += _SNAPSHOT_BYTES
                # Failing verdicts embed a counterexample tree; its node
                # count is bounded by the run's derived pairs, recorded in
                # the snapshot — no tree traversal needed here.
                stats = snapshot.get("stats")
                if snapshot.get("counterexample") is not None and stats:
                    units += _NODE_BYTES * int(stats.get("derived_pairs", 0))
            for tables in backward.transducer_tables.values():
                units += _SNAPSHOT_BYTES
                derived = tables.get("derived") or {}
                units += _ACCEPT_BYTES * sum(
                    len(phis) for phis in derived.values()
                )
        replus = self._replus
        if replus is not None:
            units += _WITNESS_DAG_BYTES * len(replus._witness_dags)
        units += _DELRELAB_BYTES * len(self._delrelab)
        return units

    def footprint_bytes(self) -> int:
        """Approximate resident bytes of this session's compiled artifacts.

        The *base* — schemas, kernels, compiled automata — is measured as
        the pickled size of :meth:`export_artifacts`
        (:func:`repro.kernel.serialize.approx_bytes`, the calibration
        path); *growth* — fixpoint cells, per-transducer tables and result
        snapshots — is tracked by the structural estimate
        (:meth:`_structural_bytes`), so a hot request stream never
        re-pickles the session: the returned value is
        ``base + structural growth since calibration``, updated per call
        from plain container lengths.  The base is re-calibrated (one
        pickle) only when the structural estimate has doubled since the
        last calibration, bounding the residual cost at O(log growth)
        measurements over a session's lifetime; the registry's byte-budget
        eviction runs on these (deliberately approximate) numbers.
        """
        with self._lock:
            structural = self._structural_bytes()
            cached = self._footprint
            if cached is not None and structural <= 2 * max(
                cached[1], self.CALIBRATION_FLOOR_BYTES
            ):
                return cached[0] + max(0, structural - cached[1])
            from repro.kernel import serialize

            base = serialize.approx_bytes(self._export_artifacts_locked())
            self._footprint = (base, structural)
            return base

    # ------------------------------------------------------------------
    # Artifact export / import (repro.cache)
    # ------------------------------------------------------------------
    def export_artifacts(self) -> Dict[str, object]:
        """The picklable schema-side artifacts of this session.

        The heavy lifting is in the schema objects themselves: a DTD carries
        its compiled content NFAs/DFAs, completed DFAs and their interned
        kernels (closure-free by design, see :mod:`repro.kernel.serialize`).
        Since the fixpoint cells went closure-free too (PR 3), the shared
        σ-independent ProductBFS cells and the per-transducer table cache
        ship along: a fresh process resumes with the fixpoints already
        converged, and repeated identical queries are answered from their
        stored tables without running the engine at all.

        Holds the session lock: with the process-global registry a
        concurrent thread may be mid-typecheck on this very session, and
        snapshotting while the shared cells mutate would either crash
        (dict changed size during iteration) or persist a mid-fixpoint
        cell as if it were converged.
        """
        with self._lock:
            return self._export_artifacts_locked()

    def _export_artifacts_locked(self) -> Dict[str, object]:
        # One blob section per persistent engine, in registration order —
        # {"sin", "sout", "forward", "backward", "replus", "delrelab"} for
        # the built-ins, byte-identical to the pre-registry layout (the
        # cache's artifact keys bake the section names in).
        artifacts: Dict[str, object] = {"sin": self.sin, "sout": self.sout}
        for engine in persistent_engines():
            artifacts[engine.name] = engine.export_state(self)
        return artifacts

    @classmethod
    def from_artifacts(
        cls,
        artifacts: Dict[str, object],
        *,
        use_kernel: bool = True,
        max_product_nodes: int = DEFAULT_MAX_PRODUCT_NODES,
    ) -> "Session":
        """Rebuild a warm session from :meth:`export_artifacts` output."""
        session = cls(
            artifacts["sin"],
            artifacts["sout"],
            use_kernel=use_kernel,
            max_product_nodes=max_product_nodes,
            eager=False,
        )
        for engine in persistent_engines():
            data = artifacts.get(engine.name)
            if data is not None:
                engine.restore_state(session, data)
        session.stats["source"] = "artifact-cache"
        return session


# ----------------------------------------------------------------------
# In-process registry
# ----------------------------------------------------------------------
# Process-global, lock-guarded.  Sessions are mutable (shared fixpoint
# cells grow during typechecking) but serialize their own calls, so
# sharing one across threads is safe — and the alternative, the seed's
# thread-local registry, recompiled every pair silently in each new
# thread (a full schema compilation per worker thread in a server).
#
# Eviction is *size-aware*: each resident session reports an approximate
# byte footprint (:meth:`Session.footprint_bytes` — a pickled-size base
# plus a structural cell/edge-count growth estimate) and the registry
# LRU-evicts until the total fits ``_REGISTRY_MAX_BYTES``.  The old
# count-only LRU bound is kept as a backstop, but bytes are what a worker
# pinned to thousands of pairs actually runs out of.  Hit/miss/eviction
# counters and the resident footprints are exposed via
# :func:`registry_info` (and through the service's ``stats`` op).
_REGISTRY: "OrderedDict[Tuple[str, str, str], Session]" = OrderedDict()
_REGISTRY_LOCK = threading.RLock()
_REGISTRY_LIMIT = 32
_DEFAULT_REGISTRY_BYTES = 256 * 1024 * 1024


def _registry_bytes_from_env() -> Optional[int]:
    """``REPRO_REGISTRY_MAX_BYTES``: an int, or ``none``/``off`` to
    disable byte eviction.  A malformed value falls back to the default —
    an env typo must never make ``import repro`` raise."""
    raw = os.environ.get("REPRO_REGISTRY_MAX_BYTES")
    if raw is None:
        return _DEFAULT_REGISTRY_BYTES
    raw = raw.strip().lower()
    if raw in ("none", "off", ""):
        return None
    try:
        return int(raw)
    except ValueError:
        return _DEFAULT_REGISTRY_BYTES


#: Byte budget of the registry (``REPRO_REGISTRY_MAX_BYTES`` overrides;
#: ``None`` disables byte-based eviction).
_REGISTRY_MAX_BYTES: Optional[int] = _registry_bytes_from_env()
_REGISTRY_STATS: Dict[str, int] = {"hits": 0, "misses": 0, "evictions": 0}


def _registry() -> "OrderedDict[Tuple[str, str, str], Session]":
    return _REGISTRY


def set_registry_budget(
    max_bytes: Optional[int], max_sessions: Optional[int] = None
) -> None:
    """Configure registry eviction: byte budget (``None`` disables) and,
    optionally, the count backstop.  Service workers call this with the
    pool's ``worker_registry_bytes`` at startup."""
    global _REGISTRY_MAX_BYTES, _REGISTRY_LIMIT
    with _REGISTRY_LOCK:
        _REGISTRY_MAX_BYTES = None if max_bytes is None else int(max_bytes)
        if max_sessions is not None:
            _REGISTRY_LIMIT = int(max_sessions)


def _evict_over_budget(registry: "OrderedDict") -> None:
    """LRU-evict until count and byte budgets hold (lock already held)."""
    while len(registry) > _REGISTRY_LIMIT:
        registry.popitem(last=False)
        _REGISTRY_STATS["evictions"] += 1
        _metrics.counter("repro.session.registry.evictions").inc()
    if _REGISTRY_MAX_BYTES is None:
        return
    total = sum(session.footprint_bytes() for session in registry.values())
    while total > _REGISTRY_MAX_BYTES and len(registry) > 1:
        _key, victim = registry.popitem(last=False)
        total -= victim.footprint_bytes()
        _REGISTRY_STATS["evictions"] += 1
        _metrics.counter("repro.session.registry.evictions").inc()
    _metrics.gauge("repro.session.registry.bytes", policy="sum").set(total)


def session_key(sin: Schema, sout: Schema, options: Dict[str, object]):
    """The registry/cache key of a schema pair: content hashes + options."""
    return (
        schema_fingerprint(sin),
        schema_fingerprint(sout),
        _options_fingerprint(options),
    )


def clear_registry() -> None:
    """Drop the process's warm sessions (tests and memory-pressure escape
    hatch).  Counters reset with the contents."""
    with _REGISTRY_LOCK:
        _registry().clear()
        for counter in _REGISTRY_STATS:
            _REGISTRY_STATS[counter] = 0


def registry_info() -> Dict[str, object]:
    """Registry introspection: size, budgets, hit/miss/eviction counters,
    the cached keys in LRU order and the per-pair byte footprints."""
    with _REGISTRY_LOCK:
        registry = _registry()
        pairs = [
            {
                "sin": key[0],
                "sout": key[1],
                "bytes": session.footprint_bytes(),
                "calls": int(session.stats["calls"]),
            }
            for key, session in registry.items()
        ]
        total_bytes = sum(pair["bytes"] for pair in pairs)
        _metrics.gauge("repro.session.registry.bytes", policy="sum").set(total_bytes)
        return {
            "size": len(registry),
            "limit": _REGISTRY_LIMIT,
            "max_bytes": _REGISTRY_MAX_BYTES,
            "total_bytes": total_bytes,
            **dict(_REGISTRY_STATS),
            "keys": list(registry),
            "pairs": pairs,
        }


def compile(  # noqa: A001 - the ISSUE mandates the repro.compile spelling
    sin: Schema,
    sout: Schema,
    *,
    use_kernel: bool = True,
    eager: bool = True,
    cache_dir=None,
    reuse: bool = True,
) -> Session:
    """Compile — or transparently reuse — a :class:`Session` for a pair.

    Lookup order: the in-process registry (keyed by schema/option content
    hashes, LRU-bounded), then the on-disk artifact cache when ``cache_dir``
    is given (see :mod:`repro.cache`), then a fresh build (which is stored
    in both).  ``reuse=False`` bypasses the registry entirely (used by cold
    benchmarks); ``eager=False`` defers artifact compilation to first use —
    except when ``cache_dir`` is given, which implies compiling (a cold
    snapshot would be persisted forever).

    Registry sessions always carry the default node budget: pass
    ``max_product_nodes`` as a ``typecheck`` kwarg to bound (or enlarge) an
    individual call — the warm retry-after-``BudgetExceededError`` pattern.
    A non-default session-wide budget needs a private ``Session(...)``.
    """
    options = {"use_kernel": use_kernel}
    key = session_key(sin, sout, options)
    session = None
    registry = _registry()
    if reuse:
        with _REGISTRY_LOCK:
            session = registry.get(key)
            if session is not None:
                registry.move_to_end(key)
                session.stats["registry_hits"] = (
                    int(session.stats["registry_hits"]) + 1
                )
                _REGISTRY_STATS["hits"] += 1
                _metrics.counter("repro.session.registry.hits").inc()
            else:
                _REGISTRY_STATS["misses"] += 1
                _metrics.counter("repro.session.registry.misses").inc()
        if session is not None and eager:
            session.warm()
    if session is None and cache_dir is not None:
        from repro import cache as artifact_cache

        session = artifact_cache.load_session(
            sin, sout, options=options, cache_dir=cache_dir
        )
    if session is None:
        session = Session(sin, sout, use_kernel=use_kernel, eager=eager)
    if cache_dir is not None:
        from repro import cache as artifact_cache

        # Persisting implies compiling: a blob snapshotted before warm()
        # would be permanently cold (ensure_saved never rewrites an
        # existing file), so cache_dir overrides eager=False.  warm() is a
        # no-op on already-compiled (registry- or disk-sourced) sessions.
        session.warm()
        # Publish even registry-sourced sessions: a long-lived process must
        # still leave artifacts behind for the next one.  publish() also
        # *refreshes* the blob (throttled) once the session accumulates
        # per-transducer tables and converged shared cells — the state a
        # fresh process most wants to inherit.
        artifact_cache.publish(session, cache_dir=cache_dir)
    if reuse:
        with _REGISTRY_LOCK:
            # Another thread may have published the pair while this one was
            # compiling; prefer the incumbent so every caller converges on
            # one warm session per pair.
            existing = registry.get(key)
            if existing is not None:
                session = existing
            registry[key] = session
            registry.move_to_end(key)
            if existing is None:
                # Budgets are enforced at *admission*: the sweep reads
                # footprints (structural estimates; at worst one pickled
                # calibration) under the registry lock, which is fine next
                # to a compile but not on the per-request hit path.  A
                # resident session growing past the budget is reclaimed at
                # the next admission.
                _evict_over_budget(registry)
    return session
