"""Reachable (state, symbol) pairs of a transducer w.r.t. an input DTD.

A pair ``(q, a)`` is *reachable* when some tree of ``L(din)`` has an
``a``-labeled node processed by ``T`` in state ``q`` (Section 5).  Because a
state occurring anywhere in ``rhs(q, a)`` processes *all* children of the
current node, reachability is the fixpoint

    ``(q₀, s_din)`` reachable (if ``L(din) ≠ ∅``);
    ``(q', b)`` reachable when ``(q, a)`` is, ``q'`` occurs in ``rhs(q, a)``
    and ``b`` is a usable child symbol of ``a``.

Each pair also records a *provenance* edge from which
:func:`context_for` rebuilds a concrete valid input tree with a hole at a
node processed in the given pair — the context part of counterexamples.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.schemas.dtd import DTD
from repro.strings.nfa import NFA
from repro.transducers.rhs import all_states
from repro.transducers.transducer import TreeTransducer
from repro.trees.generate import minimal_tree
from repro.trees.tree import Tree

Pair = Tuple[str, str]


@dataclass(frozen=True)
class Provenance:
    """Why a pair is reachable: discovered from ``parent`` via a content word
    ``word`` of ``din(parent[1])`` whose ``position``-th symbol is the
    child's symbol."""

    parent: Pair
    word: Tuple[str, ...]
    position: int


def some_word_containing(
    nfa: NFA, symbol: str, allowed
) -> Optional[Tuple[str, ...]]:
    """A shortest accepted word over ``allowed`` containing ``symbol``.

    BFS over (state, seen-flag) — the product with the two-state "contains
    symbol" automaton — run on the interned kernel: nodes are packed ints
    ``state_index * 2 + flag`` (the seed object-tuple version is preserved
    as :func:`repro.kernel.reference.some_word_containing_object`).
    """
    from repro.kernel.product import ProductBFS

    infa = nfa.kernel()
    target_symbol = infa.symbols.get(symbol)
    if target_symbol < 0:
        # The NFA can never read ``symbol``, so no accepted word contains it.
        return None
    allowed_mask = infa.allowed_mask(allowed) | (1 << target_symbol)
    rows = infa.rows
    finals_mask = infa.finals_mask

    def accepting(node: int) -> bool:
        return bool(node & 1) and bool(finals_mask >> (node >> 1) & 1)

    def successors(node: int):
        flag = node & 1
        for sym, targets in rows[node >> 1]:
            if not allowed_mask >> sym & 1:
                continue
            new_flag = flag | (sym == target_symbol)
            for target in targets:
                yield target * 2 + new_flag, sym

    engine = ProductBFS()
    hit = engine.run(
        (q * 2 for q in infa.initial), successors, on_visit=accepting
    )
    if hit is None:
        return None
    value = infa.symbols.value
    return tuple(value(sym) for sym in engine.path(hit))


def reachable_pairs(
    transducer: TreeTransducer,
    din: DTD,
    *,
    usable_cache: Dict[str, frozenset] | None = None,
    word_cache: Dict[Tuple[str, str], Tuple[str, ...]] | None = None,
) -> Dict[Pair, Optional[Provenance]]:
    """All reachable pairs with provenance (root pair maps to ``None``).

    Returns an empty mapping when ``L(din) = ∅``.  ``usable_cache`` and
    ``word_cache`` are schema-only memos (usable children per symbol and
    shortest containing words per ``(parent, child)``) — a compiled session
    passes persistent dicts so repeated calls against the same input DTD
    skip the word searches; omitted, fresh per-call dicts are used.
    """
    productive = din.productive_symbols()
    if din.start not in productive:
        return {}
    pairs: Dict[Pair, Optional[Provenance]] = {
        (transducer.initial, din.start): None
    }
    frontier = deque(pairs)
    if usable_cache is None:
        usable_cache = {}
    if word_cache is None:
        word_cache = {}
    while frontier:
        pair = frontier.popleft()
        q, a = pair
        rhs = transducer.rules.get((q, a))
        if rhs is None:
            continue
        children = usable_cache.get(a)
        if children is None:
            children = din.usable_children(a, productive)
            usable_cache[a] = children
        states = set(all_states(rhs))
        for b in children:
            word = word_cache.get((a, b))
            if word is None:
                word = some_word_containing(din.content_nfa(a), b, productive)
                assert word is not None, "usable symbols occur in some word"
                word_cache[(a, b)] = word
            position = word.index(b)
            for q2 in states:
                succ = (q2, b)
                if succ not in pairs:
                    pairs[succ] = Provenance(pair, word, position)
                    frontier.append(succ)
    return pairs


def context_for(
    pair: Pair,
    pairs: Dict[Pair, Optional[Provenance]],
    din: DTD,
    hole_label: str = "__hole__",
) -> Tuple[Tree, Tuple[int, ...]]:
    """A valid tree of ``L(din)`` with a hole at a node processed in ``pair``.

    Returns ``(tree, hole_address)``; the node at the address is a
    placeholder leaf labeled ``hole_label`` to be replaced by the violating
    subtree (which is itself rooted at ``pair[1]``).
    """
    fillers: Dict[str, Tree] = {}

    def filler(symbol: str) -> Tree:
        cached = fillers.get(symbol)
        if cached is None:
            built = minimal_tree(din, symbol)
            assert built is not None, "only productive symbols are used"
            fillers[symbol] = built
            cached = built
        return cached

    # Walk provenance up to the root, collecting the embedding steps.
    steps = []
    current = pair
    while True:
        provenance = pairs[current]
        if provenance is None:
            break
        steps.append((provenance, current))
        current = provenance.parent

    # Build the tree top-down: the hole starts at the root pair's node and
    # descends through each recorded embedding.
    tree = Tree(hole_label)
    address: Tuple[int, ...] = ()
    for provenance, child_pair in reversed(steps):
        _, parent_symbol = provenance.parent
        children = [
            Tree(hole_label) if i == provenance.position else filler(sym)
            for i, sym in enumerate(provenance.word)
        ]
        node = Tree(parent_symbol, children)
        tree = tree.replace(address, node)
        address = address + (provenance.position,)
    return tree, address
