"""XML (de)serialization of unranked trees.

The paper abstracts XML documents by their element structure (labels only —
"the abstraction focuses on structure rather than on content", Section 2.3).
Serialization therefore emits empty elements; parsing keeps element names and
drops text, attributes, comments and processing instructions.
"""

from __future__ import annotations

import xml.etree.ElementTree as _ET
from typing import List

from repro.errors import ParseError
from repro.trees.tree import Tree


def tree_to_xml(tree: Tree, indent: int = 2) -> str:
    """Serialize a tree as indented XML."""
    lines: List[str] = []

    def emit(node: Tree, level: int) -> None:
        pad = " " * (indent * level)
        if not node.children:
            lines.append(f"{pad}<{node.label}/>")
            return
        lines.append(f"{pad}<{node.label}>")
        for child in node.children:
            emit(child, level + 1)
        lines.append(f"{pad}</{node.label}>")

    emit(tree, 0)
    return "\n".join(lines)


def xml_to_tree(text: str) -> Tree:
    """Parse an XML document into its element-structure tree."""
    try:
        root = _ET.fromstring(text)
    except _ET.ParseError as exc:
        raise ParseError(f"malformed XML: {exc}") from exc

    def convert(element: _ET.Element) -> Tree:
        return Tree(element.tag, [convert(child) for child in element])

    return convert(root)
