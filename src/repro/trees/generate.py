"""Generation of trees satisfying a DTD.

Three generators with different purposes:

* :func:`minimal_tree` — a smallest witness tree (PTIME, used for
  counterexample contexts and schema emptiness witnesses);
* :func:`enumerate_trees` — exhaustive enumeration up to a node budget
  (exponential; the brute-force typechecking oracle of the test suite);
* :func:`random_tree` — randomized documents for workloads and property
  tests.

Imports of :mod:`repro.schemas` are function-local to avoid an import cycle
(the schemas package builds on trees).
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Optional, Tuple

from repro.trees.tree import Hedge, Tree


def minimal_tree(dtd, symbol: str | None = None) -> Optional[Tree]:
    """A minimum-size tree in ``L(dtd, symbol)``, or ``None`` if empty.

    Runs a Dijkstra-inside-fixpoint: the cost of a symbol is ``1 +`` the
    cheapest content word, where a word's cost is the sum of its symbols'
    costs.  Costs only shrink, so iterating to stability is polynomial.
    """
    root = dtd.start if symbol is None else symbol
    infinity = float("inf")
    cost: Dict[str, float] = {a: infinity for a in dtd.alphabet}
    best_word: Dict[str, Tuple[str, ...]] = {}

    changed = True
    while changed:
        changed = False
        for a in dtd.alphabet:
            word = _cheapest_word(dtd.content_nfa(a), cost)
            if word is None:
                continue
            total = 1 + sum(cost[b] for b in word)
            if total < cost[a]:
                cost[a] = total
                best_word[a] = word
                changed = True

    if root not in dtd.alphabet or cost.get(root, infinity) == infinity:
        return None

    # Build with per-symbol sharing: for doubling DTDs the minimal tree's
    # explicit size is exponential, but as an immutable shared structure the
    # construction is linear in the alphabet.
    memo: Dict[str, Tree] = {}

    def build(a: str) -> Tree:
        cached = memo.get(a)
        if cached is None:
            cached = Tree(a, [build(b) for b in best_word[a]])
            memo[a] = cached
        return cached

    return build(root)


def _cheapest_word(nfa, cost: Dict[str, float]) -> Optional[Tuple[str, ...]]:
    """Cheapest accepted word of ``nfa`` where symbol ``b`` costs ``cost[b]``.

    Dijkstra over NFA states; symbols of infinite cost are unusable.
    """
    import heapq

    dist: Dict[object, float] = {}
    parent: Dict[object, Tuple[object, str]] = {}
    heap: List[Tuple[float, int, object]] = []
    counter = 0
    for q in nfa.initial:
        dist[q] = 0.0
        heapq.heappush(heap, (0.0, counter, q))
        counter += 1
    goal = None
    while heap:
        d, _, q = heapq.heappop(heap)
        if d > dist.get(q, float("inf")):
            continue
        if q in nfa.finals:
            goal = q
            break
        for symbol, targets in nfa.transitions.get(q, {}).items():
            weight = cost.get(symbol, float("inf"))
            if weight == float("inf"):
                continue
            for target in targets:
                nd = d + weight
                if nd < dist.get(target, float("inf")):
                    dist[target] = nd
                    parent[target] = (q, symbol)
                    heapq.heappush(heap, (nd, counter, target))
                    counter += 1
    if goal is None:
        return None
    word: List[str] = []
    node = goal
    while node in parent:
        node, symbol = parent[node]
        word.append(symbol)
    word.reverse()
    return tuple(word)


def enumerate_trees(
    dtd, max_nodes: int, symbol: str | None = None
) -> Iterator[Tree]:
    """All trees of at most ``max_nodes`` nodes in ``L(dtd, symbol)``.

    Exponential in ``max_nodes`` — this is the brute-force oracle used to
    cross-validate the polynomial typechecking algorithms on small instances.
    """
    root = dtd.start if symbol is None else symbol
    cache: Dict[Tuple[str, int], List[Tree]] = {}

    def trees_for(a: str, budget: int) -> List[Tree]:
        # Child budgets strictly decrease, so the recursion terminates even
        # for recursive DTDs and the cache never sees a partial entry.
        if budget < 1:
            return []
        key = (a, budget)
        cached = cache.get(key)
        if cached is not None:
            return cached
        result: List[Tree] = []
        nfa = dtd.content_nfa(a)
        for word in nfa.iter_words(budget - 1):
            for children in hedges_for(tuple(word), budget - 1):
                result.append(Tree(a, children))
        cache[key] = result
        return result

    def hedges_for(word: Tuple[str, ...], budget: int) -> List[Hedge]:
        if not word:
            return [()]
        head, rest = word[0], word[1:]
        out: List[Hedge] = []
        # The remaining children need at least one node each.
        for first in trees_for(head, budget - len(rest)):
            for tail in hedges_for(rest, budget - first.size):
                out.append((first,) + tail)
        return out

    yield from sorted(trees_for(root, max_nodes), key=lambda t: (t.size, str(t)))


def random_tree(
    dtd,
    rng: random.Random | None = None,
    symbol: str | None = None,
    max_depth: int = 8,
    stop_bias: float = 0.5,
    attempts: int = 200,
) -> Optional[Tree]:
    """A random tree of ``L(dtd, symbol)`` of depth at most ``max_depth``.

    Random walk through the content automata, stopping at accepting states
    with probability ``stop_bias`` (raised near the depth limit).  Returns
    ``None`` when no tree is found within ``attempts`` retries.
    """
    rng = rng if rng is not None else random.Random()
    root = dtd.start if symbol is None else symbol

    def sample(a: str, depth: int) -> Optional[Tree]:
        if depth > max_depth:
            return None
        nfa = dtd.content_nfa(a)
        for _ in range(attempts):
            word = _random_word(nfa, rng, stop_bias if depth < max_depth else 1.0)
            if word is None:
                continue
            children: List[Tree] = []
            ok = True
            for b in word:
                child = sample(b, depth + 1)
                if child is None:
                    ok = False
                    break
                children.append(child)
            if ok:
                return Tree(a, children)
        return None

    return sample(root, 1)


def _random_word(nfa, rng: random.Random, stop_bias: float, max_len: int = 16):
    """One random accepted word, or ``None`` if the walk fails."""
    if not nfa.initial:
        return None
    state = rng.choice(sorted(nfa.initial, key=repr))
    word: List[str] = []
    for _ in range(max_len + 1):
        if state in nfa.finals and (rng.random() < stop_bias or len(word) >= max_len):
            return tuple(word)
        row = nfa.transitions.get(state, {})
        options = [
            (symbol, target) for symbol, targets in row.items() for target in targets
        ]
        if not options:
            return tuple(word) if state in nfa.finals else None
        symbol, state = rng.choice(sorted(options, key=repr))
        word.append(symbol)
    return None
