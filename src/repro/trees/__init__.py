"""Unranked trees and hedges (Section 2.1 of the paper).

* :mod:`~repro.trees.tree` — immutable unranked trees, the paper's term
  syntax ``a(b c(d))``, Dewey-address node sets, depth, ``top``;
* :mod:`~repro.trees.dag` — DAG/SLP-compressed trees whose unfoldings may be
  exponentially large (used for the ``t_min``/``t_vast`` witnesses of §5/§6);
* :mod:`~repro.trees.generate` — enumeration and random generation of trees
  satisfying a DTD (brute-force oracle, benchmarks);
* :mod:`~repro.trees.xml_io` — XML (de)serialization.
"""

from repro.trees.tree import (
    Tree,
    hedge_str,
    hedge_top,
    parse_hedge,
    parse_tree,
)
from repro.trees.dag import DagHedge, DagTree

__all__ = [
    "Tree",
    "parse_tree",
    "parse_hedge",
    "hedge_str",
    "hedge_top",
    "DagTree",
    "DagHedge",
]
