"""DAG/SLP-compressed trees and hedges.

Section 5/6 of the paper work with the witness trees ``t_min_a`` and
``t_vast_a`` whose *unfolded* size can be exponential (``t_vast`` duplicates
every ⁺-child), but which the paper notes are "easily represented by a
polynomial sized extended context free grammar".  This module is that
representation: trees and hedges as DAGs with explicit sharing.

* :class:`DagTree` — a labeled node whose children form a :class:`DagHedge`;
* :class:`DagHedge` — a concatenation of parts, each a tree or another hedge
  (a straight-line program for the child sequence).

All analyses (unfolded size, DFA runs over the ``top`` word, DTD validation,
transducer application in :mod:`repro.core.replus`) are memoized on node
*identity*, so shared subdags are processed once and everything stays
polynomial in the DAG size.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple, Union

from repro.errors import BudgetExceededError
from repro.strings.dfa import DFA
from repro.trees.tree import Tree

DagPart = Union["DagTree", "DagHedge"]


#: Unfoldings at most this large render as explicit term syntax in ``str()``.
STR_UNFOLD_BUDGET = 10_000


class DagTree:
    """A tree node in the DAG: label plus a (shared) child hedge.

    Equality is *structural on the unfolding*: two dags (or a dag and an
    explicit :class:`Tree`) compare equal iff their unfolded trees are
    equal, memoized on node-identity pairs so aligned shared subdags are
    compared once.  Note that hashes are **not** compatible with
    :class:`Tree` hashes — do not mix dags and explicit trees as keys of
    one dict.
    """

    __slots__ = ("label", "children")

    def __init__(self, label: str, children: "DagHedge | None" = None) -> None:
        self.label = label
        self.children: DagHedge = children if children is not None else DagHedge(())

    def __repr__(self) -> str:
        return f"DagTree({self.label!r})"

    def __str__(self) -> str:
        size = unfolded_size(self)
        if size <= STR_UNFOLD_BUDGET:
            return str(unfold_tree(self, STR_UNFOLD_BUDGET))
        distinct = len(distinct_tree_nodes(self))
        return (
            f"<dag {self.label}: {size} unfolded nodes, "
            f"{distinct} distinct>"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, (DagTree, Tree)):
            return NotImplemented
        return dag_equal(self, other)

    def __hash__(self) -> int:
        return hash((self.label, unfolded_size(self)))

    @property
    def size(self) -> int:
        """Number of nodes of the unfolding (exact, possibly huge)."""
        return unfolded_size(self)

    @property
    def depth(self) -> int:
        """Depth of the unfolding (paper convention: single node is 1)."""
        return dag_depth(self)


class DagHedge:
    """A concatenation of trees and hedges (an SLP for a child sequence)."""

    __slots__ = ("parts",)

    def __init__(self, parts: Iterable[DagPart] = ()) -> None:
        self.parts: Tuple[DagPart, ...] = tuple(parts)
        for part in self.parts:
            if not isinstance(part, (DagTree, DagHedge)):
                raise TypeError(f"part {part!r} is not a DagTree or DagHedge")

    def __repr__(self) -> str:
        return f"DagHedge({len(self.parts)} parts)"

    @staticmethod
    def of(*parts: DagPart) -> "DagHedge":
        return DagHedge(parts)


# ---------------------------------------------------------------------------
# Conversions
# ---------------------------------------------------------------------------


def from_tree(tree: Tree) -> DagTree:
    """Embed an explicit tree as a (sharing-free) DAG."""
    return DagTree(tree.label, DagHedge([from_tree(c) for c in tree.children]))


def unfold_tree(node: DagTree, max_nodes: int = 1_000_000) -> Tree:
    """Expand a DAG tree to an explicit :class:`Tree`.

    Raises :class:`BudgetExceededError` when the unfolding would exceed
    ``max_nodes`` nodes — unfoldings are exponential in general.
    """
    if unfolded_size(node) > max_nodes:
        raise BudgetExceededError(
            f"unfolding has {unfolded_size(node)} nodes (> {max_nodes})"
        )
    memo: Dict[int, Tree] = {}

    def tree_of(part: DagTree) -> Tree:
        key = id(part)
        cached = memo.get(key)
        if cached is not None:
            return cached
        result = Tree(part.label, unfold_hedge_parts(part.children))
        memo[key] = result
        return result

    def unfold_hedge_parts(hedge: DagHedge) -> list[Tree]:
        out: list[Tree] = []
        for part in hedge.parts:
            if isinstance(part, DagTree):
                out.append(tree_of(part))
            else:
                out.extend(unfold_hedge_parts(part))
        return out

    return tree_of(node)


def unfold_hedge(hedge: DagHedge, max_nodes: int = 1_000_000) -> Tuple[Tree, ...]:
    """Expand a DAG hedge to an explicit hedge (same budget guard)."""
    root = DagTree("__root__", hedge)
    return unfold_tree(root, max_nodes + 1).children


# ---------------------------------------------------------------------------
# Memoized analyses
# ---------------------------------------------------------------------------


def unfolded_size(node: DagPart, _memo: Dict[int, int] | None = None) -> int:
    """Number of nodes of the unfolding (exact, big-integer arithmetic)."""
    memo: Dict[int, int] = {} if _memo is None else _memo

    def size_of(part: DagPart) -> int:
        key = id(part)
        cached = memo.get(key)
        if cached is not None:
            return cached
        if isinstance(part, DagTree):
            result = 1 + size_of(part.children)
        else:
            result = sum(size_of(p) for p in part.parts)
        memo[key] = result
        return result

    return size_of(node)


def top_length(hedge: DagHedge) -> int:
    """Length of ``top`` of the unfolded hedge (number of root trees)."""
    memo: Dict[int, int] = {}

    def length_of(part: DagPart) -> int:
        if isinstance(part, DagTree):
            return 1
        key = id(part)
        cached = memo.get(key)
        if cached is not None:
            return cached
        result = sum(length_of(p) for p in part.parts)
        memo[key] = result
        return result

    return length_of(hedge)


def dag_depth(node: DagPart) -> int:
    """Depth of the unfolding (paper convention: single node has depth 1)."""
    memo: Dict[int, int] = {}

    def depth_of(part: DagPart) -> int:
        key = id(part)
        cached = memo.get(key)
        if cached is not None:
            return cached
        if isinstance(part, DagTree):
            result = 1 + depth_of(part.children)
        else:
            result = max((depth_of(p) for p in part.parts), default=0)
        memo[key] = result
        return result

    return depth_of(node)


class TransferTable:
    """Memoized DFA transfer maps over ``top`` words of DAG hedges.

    ``transfer(hedge)`` returns a dict mapping each DFA state ``s`` to the
    state reached by running the DFA from ``s`` over the (possibly
    exponentially long) sequence of root labels of ``hedge``; missing keys
    mean the run dies.  Composition over shared sub-hedges happens once.
    """

    def __init__(self, dfa: DFA) -> None:
        self.dfa = dfa
        self._memo: Dict[int, Dict] = {}

    def transfer(self, part: DagPart) -> Dict:
        key = id(part)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        if isinstance(part, DagTree):
            result = {
                s: self.dfa.transitions[(s, part.label)]
                for s in self.dfa.states
                if (s, part.label) in self.dfa.transitions
            }
        else:
            result = {s: s for s in self.dfa.states}
            for sub in part.parts:
                step = self.transfer(sub)
                result = {
                    s: step[mid]
                    for s, mid in result.items()
                    if mid in step
                }
                if not result:
                    break
        self._memo[key] = result
        return result

    def accepts_top(self, hedge: DagHedge) -> bool:
        """Whether the DFA accepts ``top`` of the unfolded hedge."""
        final = self.transfer(hedge).get(self.dfa.initial)
        return final in self.dfa.finals


def dag_equal(a: "DagTree | Tree", b: "DagTree | Tree") -> bool:
    """Structural equality of the *unfoldings* of two dags (or plain trees).

    Memoized on identity pairs: aligned shared subdags are compared once,
    so same-construction dags (e.g. sharded vs unsharded witnesses over
    identical cells) compare in DAG size, not unfolded size.
    """
    proven: set[Tuple[int, int]] = set()

    def top_trees(node) -> list:
        if isinstance(node, Tree):
            return list(node.children)
        out: list = []
        stack: list[DagPart] = list(reversed(node.children.parts))
        while stack:
            part = stack.pop()
            if isinstance(part, DagTree):
                out.append(part)
            else:
                stack.extend(reversed(part.parts))
        return out

    def trees_eq(x, y) -> bool:
        if x is y:
            return True
        key = (id(x), id(y))
        if key in proven:
            return True
        if x.label != y.label:
            return False
        xs, ys = top_trees(x), top_trees(y)
        if len(xs) != len(ys):
            return False
        if not all(trees_eq(cx, cy) for cx, cy in zip(xs, ys)):
            return False
        proven.add(key)
        return True

    return trees_eq(a, b)


def distinct_tree_nodes(node: DagPart) -> list[DagTree]:
    """All distinct :class:`DagTree` nodes reachable in the DAG."""
    seen: Dict[int, DagTree] = {}
    visited_hedges: set[int] = set()
    stack: list[DagPart] = [node]
    order: list[DagTree] = []
    while stack:
        part = stack.pop()
        if isinstance(part, DagTree):
            if id(part) in seen:
                continue
            seen[id(part)] = part
            order.append(part)
            stack.append(part.children)
        else:
            if id(part) in visited_hedges:
                continue
            visited_hedges.add(id(part))
            stack.extend(part.parts)
    return order
