"""Unranked Σ-trees and hedges (Section 2.1).

A tree is ``a(t₁ ⋯ t_n)`` — a root labeled ``a`` with an arbitrary, unbounded
number of ordered subtrees.  The paper's "empty tree ε" is represented by the
*empty hedge* ``()``: hedges are plain Python tuples of :class:`Tree`, so the
hedge algebra (concatenation, ``top``) is tuple algebra.

Node addresses are Dewey paths: the root is ``()`` and the ``i``-th child of
``u`` is ``u + (i,)`` (0-based; the paper's node ``u·(i+1)``).
"""

from __future__ import annotations

import re as _stdlib_re
from typing import Dict, Iterator, Sequence, Tuple

from repro.errors import ParseError

Path = Tuple[int, ...]
Hedge = Tuple["Tree", ...]


class Tree:
    """An immutable unranked tree: a label and a tuple of subtrees."""

    __slots__ = ("label", "children", "_hash")

    def __init__(self, label: str, children: Sequence["Tree"] = ()) -> None:
        self.label = label
        self.children: Hedge = tuple(children)
        for child in self.children:
            if not isinstance(child, Tree):
                raise TypeError(f"child {child!r} is not a Tree")
        self._hash: int | None = None

    # ------------------------------------------------------------------
    # Value semantics
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Tree):
            return NotImplemented
        if self is other:
            return True
        # Iterative comparison to survive deep trees.
        stack = [(self, other)]
        while stack:
            left, right = stack.pop()
            if left is right:
                continue
            if left.label != right.label or len(left.children) != len(right.children):
                return False
            stack.extend(zip(left.children, right.children))
        return True

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self.label, self.children))
        return self._hash

    def __repr__(self) -> str:
        return f"Tree({str(self)!r})"

    def __str__(self) -> str:
        if not self.children:
            return self.label
        return f"{self.label}({hedge_str(self.children)})"

    # ------------------------------------------------------------------
    # Paper notions
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of nodes."""
        count = 0
        stack = [self]
        while stack:
            node = stack.pop()
            count += 1
            stack.extend(node.children)
        return count

    @property
    def depth(self) -> int:
        """Depth as in the paper: a single-node tree has depth 1."""
        best = 0
        stack = [(self, 1)]
        while stack:
            node, level = stack.pop()
            if level > best:
                best = level
            for child in node.children:
                stack.append((child, level + 1))
        return best

    def dom(self) -> Iterator[Path]:
        """Dom(t): all node addresses in preorder."""
        stack: list[tuple[Tree, Path]] = [(self, ())]
        while stack:
            node, path = stack.pop()
            yield path
            for index in range(len(node.children) - 1, -1, -1):
                stack.append((node.children[index], path + (index,)))

    def nodes(self) -> Iterator[Tuple[Path, "Tree"]]:
        """All ``(address, subtree)`` pairs in preorder."""
        stack: list[tuple[Tree, Path]] = [(self, ())]
        while stack:
            node, path = stack.pop()
            yield path, node
            for index in range(len(node.children) - 1, -1, -1):
                stack.append((node.children[index], path + (index,)))

    def subtree(self, path: Path) -> "Tree":
        """The subtree ``t/u`` rooted at address ``path``."""
        node = self
        for index in path:
            try:
                node = node.children[index]
            except IndexError:
                raise KeyError(f"no node at address {path}") from None
        return node

    def label_at(self, path: Path) -> str:
        """``lab_t(u)``."""
        return self.subtree(path).label

    def replace(self, path: Path, replacement: "Tree") -> "Tree":
        """A copy of the tree with the subtree at ``path`` replaced."""
        if not path:
            return replacement
        index, rest = path[0], path[1:]
        if index >= len(self.children):
            raise KeyError(f"no node at address {path}")
        children = list(self.children)
        children[index] = children[index].replace(rest, replacement)
        return Tree(self.label, children)

    def labels(self) -> Dict[str, int]:
        """Multiset of labels (label → occurrence count)."""
        out: Dict[str, int] = {}
        stack = [self]
        while stack:
            node = stack.pop()
            out[node.label] = out.get(node.label, 0) + 1
            stack.extend(node.children)
        return out


def hedge_top(hedge: Hedge) -> Tuple[str, ...]:
    """``top(h)``: the string of root labels of the hedge (Section 2.1)."""
    return tuple(tree.label for tree in hedge)


def hedge_str(hedge: Hedge) -> str:
    """Render a hedge in the paper's term syntax."""
    return " ".join(str(tree) for tree in hedge)


def hedge_depth(hedge: Hedge) -> int:
    """Depth of a hedge: maximum depth of its trees (0 for the empty hedge)."""
    return max((tree.depth for tree in hedge), default=0)


def hedge_size(hedge: Hedge) -> int:
    """Total number of nodes in the hedge."""
    return sum(tree.size for tree in hedge)


# ---------------------------------------------------------------------------
# Parsing the paper's term syntax: a(b c(d e))
# ---------------------------------------------------------------------------

_TOKEN = _stdlib_re.compile(r"\s*(?:(?P<sym>[A-Za-z0-9_#$\-]+)|(?P<op>[(),]))")


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN.match(text, pos)
        if match is None:
            remainder = text[pos:].strip()
            if not remainder:
                break
            raise ParseError(f"cannot tokenize tree at ...{text[pos:pos + 12]!r}")
        pos = match.end()
        if match.group("sym"):
            tokens.append(("sym", match.group("sym")))
        elif match.group("op") != ",":
            tokens.append(("op", match.group("op")))
    return tokens


def _parse_hedge_tokens(tokens: list[tuple[str, str]], index: int) -> tuple[Hedge, int]:
    trees: list[Tree] = []
    while index < len(tokens):
        kind, value = tokens[index]
        if (kind, value) == ("op", ")"):
            break
        if kind != "sym":
            raise ParseError(f"unexpected token {value!r} in tree term")
        index += 1
        children: Hedge = ()
        if index < len(tokens) and tokens[index] == ("op", "("):
            children, index = _parse_hedge_tokens(tokens, index + 1)
            if index >= len(tokens) or tokens[index] != ("op", ")"):
                raise ParseError("unbalanced parentheses in tree term")
            index += 1
        trees.append(Tree(value, children))
    return tuple(trees), index


def parse_hedge(text: str) -> Hedge:
    """Parse a hedge in term syntax, e.g. ``"a(b) c"``.

    The empty string denotes the empty hedge (the paper's ε).
    """
    tokens = _tokenize(text)
    hedge, index = _parse_hedge_tokens(tokens, 0)
    if index != len(tokens):
        raise ParseError(f"trailing input in tree term {text!r}")
    return hedge


def parse_tree(text: str) -> Tree:
    """Parse a single tree in term syntax, e.g. ``"a(b c(d e))"``."""
    hedge = parse_hedge(text)
    if len(hedge) != 1:
        raise ParseError(
            f"expected exactly one tree, got a hedge of {len(hedge)} trees"
        )
    return hedge[0]
