"""``repro.backward`` — inverse type inference (the classical backward route).

A second, independent typechecking engine next to the paper's forward
accumulation method: complement the output schema (completed content DFAs
with flipped acceptance — the Theorem 20 machinery specialized to DTDs),
run a backward rule induction over the top-down transducer to obtain the
pre-image of the bad-output language, and decide typechecking as
emptiness of ``pre-image ∩ din`` on the shared kernel
:class:`~repro.kernel.product.ProductBFS` engine.  Exposed end to end as
``method="backward"`` (``Session.typecheck``, the one-shot API, the CLI
and the service).  See :mod:`repro.backward.engine` for the algorithm.
"""

from repro.backward.engine import (
    BACKWARD_TABLE_LIMIT,
    BackwardEngine,
    BackwardSchema,
    WitnessCycleError,
    backward_check_keys,
    backward_key_costs,
    compute_backward_tables,
    hydrate_backward_tables,
    merge_backward_tables,
    typecheck_backward,
)
from repro.backward.preimage import preimage_product_nta

__all__ = [
    "BACKWARD_TABLE_LIMIT",
    "BackwardEngine",
    "BackwardSchema",
    "WitnessCycleError",
    "backward_check_keys",
    "backward_key_costs",
    "compute_backward_tables",
    "hydrate_backward_tables",
    "merge_backward_tables",
    "preimage_product_nta",
    "typecheck_backward",
]
