"""Inverse type inference — typechecking by pre-image computation.

This is the classical *backward* route of the typechecking literature
(Frisch & Hosoya, *Towards Practical Typechecking for Macro Tree
Transducers*; Martens–Neven–Gyssens, *On Typechecking Top-Down XML
Transformations*), built as a second, independent engine next to the
paper's forward accumulation method (:mod:`repro.core.forward`):

    ``T`` typechecks w.r.t. ``(din, dout)``
        ⟺  ``T⁻¹(complement of L(dout)) ∩ L(din) = ∅``.

For DTD output schemas the complement machinery is the one the repo
already owns: the DTAc complement of Theorem 20 ("switch final and
non-final states") specializes, symbol by symbol, to the *completed*
content DFAs (:meth:`repro.schemas.dtd.DTD.content_dfa_complete`) with
flipped acceptance — a tree violates ``dout`` exactly when its root label
is not the start symbol or some node's children word leaves a completed
content DFA outside its finals.

The pre-image is computed by a **backward rule induction** over the
top-down transducer.  The engine abstracts the output hedge
``T^q(t)`` of every input tree ``t`` and transducer state ``q`` by a
finite *behavior*:

``(count, label, valid, f)``
    ``count``     — the hedge length capped at two (``T(t)`` must be a
                    single tree; the empty hedge and multi-tree hedges
                    conform to no tree schema);
    ``label``     — the root label when ``count == 1`` (the output root
                    must be ``dout``'s start symbol);
    ``valid``     — whether every node of every tree in the hedge
                    satisfies its ``dout`` content model;
    ``f``         — for every *tracked* output symbol σ (one whose
                    content DFA can ever read a transducer-produced
                    hedge), the state transformation the top-level word
                    of the hedge induces on the completed content DFA of
                    σ — the transition-monoid element of the word.

Behaviors concatenate (counts add saturating, valid bits conjoin,
transformations compose), so the behavior of ``T^q(a(t₁ ⋯ t_k))`` is
computed from the rules ``rhs(q, a)`` and the child behaviors alone —
the rule induction.  Because the transducer and the completed DFAs are
deterministic, each input tree has exactly *one* behavior per state: the
map ``Φ(t): q ↦ behavior of T^q(t)`` is the pre-image automaton's state
at ``t``, and the set of reachable ``(input symbol, Φ)`` pairs — with
``din``-validity enforced by running the input content DFAs over the
children — is exactly the reachable state space of the *product* of the
pre-image NTA with ``din``.  Emptiness of that product is decided
demand-driven on the shared :class:`~repro.kernel.product.ProductBFS`
engine, one persistent product graph per input symbol (input content DFA
× behavior-map tracker), mirroring the forward engine's hedge cells.

Unlike the forward engine, the rule induction needs **no tractability
class**: copying and deletion only grow the (budget-guarded) reachable
behavior space, never the algorithm — ``typecheck_backward`` runs on
transducers with unbounded deletion path width where ``typecheck_forward``
raises :class:`~repro.errors.ClassViolationError`.  The trade is that its
cost tracks the transition monoids of the output content DFAs instead of
Lemma 14's ``n_out^{C·K}`` seed counts — small output schemas with large
transducer fan-out favor backward, wide content models favor forward
(see ``BENCH_backward.json``).

Counterexamples are extracted from the product: every derived pair
records the child-pair word that produced it (witnesses reference only
pairs derived strictly earlier, so the recursive tree construction is
well-founded), and the first *bad* pair at the input start symbol
unfolds into a concrete ``t ∈ L(din)`` with ``T(t) ∉ L(dout)``.
"""

from __future__ import annotations

import time
from collections import OrderedDict, deque
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import BudgetExceededError, ClassViolationError
from repro.kernel.interning import Interner
from repro.kernel.product import ProductBFS
from repro.obs import trace as _trace
from repro.core.problem import TypecheckResult
from repro.schemas.dtd import DTD
from repro.transducers.rhs import RhsCall, RhsState, RhsSym, iter_rhs_nodes
from repro.transducers.transducer import TreeTransducer
from repro.trees.generate import minimal_tree
from repro.trees.tree import Tree
from repro.util import lru_get, lru_store


def _table_cache_metric(outcome: str) -> None:
    """Count a per-transducer table-cache probe under the registry's
    per-engine label (plus the legacy PR 8 name, kept for one release)."""
    from repro.engines import get_engine

    get_engine('backward').record_table_cache(outcome)

#: A derived pre-image product state: ``(input symbol, interned Φ)``.
PairKey = Tuple[str, int]

#: How many per-transducer result snapshots a BackwardSchema retains (LRU).
BACKWARD_TABLE_LIMIT = 64


class BackwardSchema:
    """Per-``(din, dout)`` compiled artifacts of the backward engine.

    The schema-side state mirrors :class:`~repro.core.forward.ForwardSchema`
    where the two engines consume the same artifacts — productive input
    symbols, interned input content DFAs with useful-state masks and live
    child symbols, completed output content DFAs — and *shares* them: the
    underlying automata and kernels are cached on the DTD objects (and the
    per-kernel ``aux`` memo uses the same key as the forward engine), so a
    session serving both methods compiles each artifact once.

    Per-*transducer* state is a bounded LRU of result snapshots
    (verdict, reason, counterexample) keyed by transducer content hash:
    backward behaviors mention the rules throughout, so — unlike the
    forward engine's σ-independent cells — there is no schema-only
    fixpoint fragment to share, and the natural cache unit is the finished
    answer.  Snapshots are plain picklable data; the session exports them
    into the artifact cache (side files, see :mod:`repro.cache`) and
    service workers hydrate them like forward tables.
    """

    def __init__(self, din: DTD, dout: DTD) -> None:
        self.din = din
        self.dout = dout
        self.productive = din.productive_symbols()
        self.base_out_alphabet = frozenset(din.alphabet | dout.alphabet)
        self._in_kern: Dict[str, Tuple] = {}
        self._in_useful: Dict[str, Tuple] = {}
        # transducer content hash -> result snapshot (LRU).
        self.transducer_results: "OrderedDict[str, Dict[str, object]]" = OrderedDict()
        self.transducer_result_limit = BACKWARD_TABLE_LIMIT
        # transducer content hash -> externalized table snapshot (LRU),
        # the warm base :func:`incremental_backward_tables` diffs against.
        # Result snapshots above carry only the finished answer; edit
        # chains additionally need the derived Φ lists themselves.
        self.transducer_tables: "OrderedDict[str, Dict[str, object]]" = OrderedDict()
        # Measured per-key (= per-input-symbol) costs of previous sharded
        # runs, mirroring ForwardSchema.shard_profiles: transducer content
        # hash -> {input symbol: attributed seconds}.  planner="profile"
        # plans repeated pairs on these instead of the size model.
        self.shard_profiles: "OrderedDict[str, Dict[str, float]]" = OrderedDict()
        self.shard_profile_version = 0
        self.compiled = False

    def in_kernel_info(self, a: str):
        """Interned input content DFA of ``a`` with its useful-state mask
        and the usable child symbols as ``(symbol, symbol_index)`` pairs.

        Delegates to the one construction in
        :func:`repro.core.forward.input_kernel_info` (same kernel-level
        ``aux`` memo), so the two engines share one compiled artifact per
        input symbol by definition, not by parallel copies.
        """
        from repro.core.forward import input_kernel_info

        return input_kernel_info(
            self.din, self.productive, a, self._in_kern, self._in_useful
        )

    def out_kernel(self, sigma: str, out_alphabet: frozenset):
        """Interned completed output content DFA of ``sigma``.

        Symbols without a ``dout`` rule (including symbols foreign to
        ``dout``'s alphabet) get the ε content model, completed — exactly
        the semantics of ``dout.accepts`` and of the forward engine's
        root checks.
        """
        return self.dout.content_dfa_complete(sigma, out_alphabet).kernel()

    def cached_result(self, table_key: str) -> Optional[Dict[str, object]]:
        """A previous run's snapshot for an equal transducer (LRU-touched)."""
        return lru_get(self.transducer_results, table_key)

    def store_result(self, table_key: str, snapshot: Dict[str, object]) -> None:
        lru_store(self.transducer_results, table_key, snapshot,
                  self.transducer_result_limit)

    def cached_tables(self, table_key: str) -> Optional[Dict[str, object]]:
        """A previous run's externalized table snapshot (LRU-touched)."""
        return lru_get(self.transducer_tables, table_key)

    def store_tables(self, table_key: str, tables: Dict[str, object]) -> None:
        lru_store(self.transducer_tables, table_key, tables,
                  self.transducer_result_limit)

    def shard_profile(self, table_key: str) -> Optional[Dict[str, float]]:
        """The measured per-symbol costs of a previous sharded run of an
        equal transducer, or ``None`` (LRU-touched on hit)."""
        return lru_get(self.shard_profiles, table_key)

    def record_shard_profile(
        self, table_key: str, profile: Dict[str, float]
    ) -> None:
        """Retain the measured per-symbol costs of a sharded run (LRU)."""
        lru_store(self.shard_profiles, table_key, profile,
                  self.transducer_result_limit)
        self.shard_profile_version += 1

    def warm(self) -> "BackwardSchema":
        """Eagerly compile every schema-derived artifact.

        Cheap after a :class:`~repro.core.forward.ForwardSchema` warm-up of
        the same pair: the automata live in the DTD-level caches and the
        kernels on the DFAs, so shared artifacts are cache hits.
        """
        if self.compiled:
            return self
        from repro.kernel.serialize import warm_kernels

        automata = []
        for a in sorted(self.din.alphabet, key=repr):
            self.din.content_dfa(a)
            self.in_kernel_info(a)
        for sigma in sorted(self.dout.alphabet, key=repr):
            automata.append(
                self.dout.content_dfa_complete(sigma, self.base_out_alphabet)
            )
        warm_kernels(automata)
        self.compiled = True
        return self


class _Cell:
    """Per-input-symbol product cell: input content DFA × behavior tracker."""

    __slots__ = ("symbol", "idfa", "useful_mask", "child_syms", "engine",
                 "consumed", "edges")

    def __init__(self, symbol: str, idfa, useful_mask: int, child_syms) -> None:
        self.symbol = symbol
        self.idfa = idfa
        self.useful_mask = useful_mask
        self.child_syms = child_syms
        self.engine: Optional[ProductBFS] = None
        self.consumed: Dict[str, int] = {}
        self.edges: List[Tuple] = []  # (node, (c, phi), succ) when recording


class BackwardEngine:
    """The backward rule-induction fixpoint over one transducer.

    ``record_edges=True`` keeps every product edge (not just the BFS
    parent edges) so :func:`repro.backward.preimage.preimage_product_nta`
    can export the explicit pre-image × ``din`` product NTA;
    ``early_exit=False`` saturates the fixpoint instead of stopping at the
    first violation (the export needs the full reachable space).
    """

    def __init__(
        self,
        transducer: TreeTransducer,
        din: DTD,
        dout: DTD,
        max_product_nodes: int = 500_000,
        schema: Optional[BackwardSchema] = None,
        record_edges: bool = False,
        early_exit: bool = True,
    ) -> None:
        if schema is None:
            schema = BackwardSchema(din, dout)
        elif schema.din is not din or schema.dout is not dout:
            raise ValueError(
                "schema context was compiled for different DTD objects"
            )
        self.transducer = transducer
        self.din = din
        self.dout = dout
        self.schema = schema
        self.max_product_nodes = max_product_nodes
        self.record_edges = record_edges
        self.early_exit = early_exit
        self.out_alphabet = frozenset(transducer.alphabet | dout.alphabet)

        # Domain: the states whose translations can be spliced anywhere —
        # every rhs leaf state plus the initial state (the root check).
        leaves: Set[str] = {transducer.initial}
        tracked: Set[str] = set()
        for rhs in transducer.rules.values():
            for _path, node in iter_rhs_nodes(rhs):
                if isinstance(node, (RhsState, RhsCall)):
                    leaves.add(node.state)
                elif any(
                    isinstance(child, (RhsState, RhsCall))
                    for child in node.children
                ):
                    tracked.add(node.label)
        self.domain: Tuple[str, ...] = tuple(sorted(leaves))
        self._dom_index = {q: i for i, q in enumerate(self.domain)}
        self._q0_index = self._dom_index[transducer.initial]
        # Tracked output symbols: only a label with a state directly under
        # it ever reads a transducer-produced hedge with its content DFA —
        # behaviors carry transformations for exactly those.
        self.sigmas: Tuple[str, ...] = tuple(sorted(tracked))
        self._sigma_index = {s: i for i, s in enumerate(self.sigmas)}
        self._out = [
            schema.out_kernel(sigma, self.out_alphabet) for sigma in self.sigmas
        ]

        # Behavior / behavior-map interners and the operation memos (the
        # lazily built multiplication table of the transformation monoid).
        self._abs = Interner()
        self._maps = Interner()
        identity = tuple(tuple(range(idfa.n_states)) for idfa in self._out)
        self._abs_empty = self._abs.intern((0, None, True, identity))
        self._map_empty = self._maps.intern(
            (self._abs_empty,) * len(self.domain)
        )
        self._concat_memo: Dict[Tuple[int, int], int] = {}
        self._step_memo: Dict[Tuple[int, int], int] = {}
        self._sym_memo: Dict[Tuple[str, bool], int] = {}
        self._eval_memo: Dict[Tuple[str, int], int] = {}
        self._static_abs: Dict[int, int] = {}
        self._static_ok: Dict[int, bool] = {}
        self._dyn_memo: Dict[int, bool] = {}

        # Derived pairs with their witness child words.
        self.derived: Dict[str, List[int]] = {}
        self._derived_set: Set[PairKey] = set()
        self.witness: Dict[PairKey, Tuple[PairKey, ...]] = {}
        self.violation: Optional[PairKey] = None
        self.work = 0
        # Wall seconds accumulated per input-symbol cell across the chaotic
        # iteration — the measured per-key costs a sharded run exports for
        # planner="profile" (see compute_backward_tables).
        self.cell_elapsed: Dict[str, float] = {}

        self._cells: Dict[str, _Cell] = {}
        self._dependents: Dict[str, List[str]] = {}
        self._dirty: deque = deque()
        self._dirty_set: Set[str] = set()

    # ------------------------------------------------------------------
    # Behavior algebra
    # ------------------------------------------------------------------
    def _concat(self, left: int, right: int) -> int:
        """Concatenation of hedge behaviors (monoid multiplication)."""
        if left == self._abs_empty:
            return right
        if right == self._abs_empty:
            return left
        key = (left, right)
        cached = self._concat_memo.get(key)
        if cached is None:
            c1, l1, v1, f1 = self._abs.value(left)
            c2, l2, v2, f2 = self._abs.value(right)
            count = c1 + c2
            if count >= 2:
                count, label = 2, None
            elif count == 1:
                label = l1 if c1 else l2
            else:
                label = None
            composed = tuple(
                tuple(t2[x] for x in t1) for t1, t2 in zip(f1, f2)
            )
            cached = self._abs.intern((count, label, v1 and v2, composed))
            self._concat_memo[key] = cached
        return cached

    def _sym_abs(self, label: str, valid: bool) -> int:
        """The behavior of a single output tree rooted ``label``."""
        key = (label, valid)
        cached = self._sym_memo.get(key)
        if cached is None:
            columns = []
            for idfa in self._out:
                j = idfa.symbols.index(label)
                table = idfa.table
                ns = idfa.n_symbols
                columns.append(
                    tuple(table[x * ns + j] for x in range(idfa.n_states))
                )
            cached = self._abs.intern((1, label, valid, tuple(columns)))
            self._sym_memo[key] = cached
        return cached

    def _dynamic(self, node) -> bool:
        """Whether the rhs subtree mentions a state (behavior-dependent)."""
        if isinstance(node, (RhsState, RhsCall)):
            return True
        nid = id(node)
        cached = self._dyn_memo.get(nid)
        if cached is None:
            cached = any(self._dynamic(child) for child in node.children)
            self._dyn_memo[nid] = cached
        return cached

    def _static_word_ok(self, node: RhsSym) -> bool:
        """Acceptance of a state-free children word by ``A_{node.label}``."""
        nid = id(node)
        cached = self._static_ok.get(nid)
        if cached is None:
            idfa = self.schema.out_kernel(node.label, self.out_alphabet)
            word = idfa.intern_word(
                tuple(child.label for child in node.children)
            )
            assert word is not None, "output DFAs are complete over Σ_out"
            cached = idfa.is_final(idfa.run(word, start=idfa.initial))
            self._static_ok[nid] = cached
        return cached

    def _eval_sym(self, node: RhsSym, g_vals: Tuple[int, ...]) -> int:
        """The behavior of one rhs output node under child behaviors ``G``."""
        nid = id(node)
        cached = self._static_abs.get(nid)
        if cached is not None:
            return cached
        if any(isinstance(child, RhsState) for child in node.children):
            # Dynamic children word: read acceptance off the hedge
            # behavior's transformation for this (tracked) label.
            sig = self._sigma_index[node.label]
            child_abs = self._eval_hedge(node.children, g_vals)
            _count, _label, valid, f = self._abs.value(child_abs)
            idfa = self._out[sig]
            valid = valid and idfa.is_final(f[sig][idfa.initial])
        else:
            # Fixed children word; subtree validity may still be dynamic.
            valid = self._static_word_ok(node)
            if valid:
                for child in node.children:
                    child_abs = self._eval_sym(child, g_vals)
                    if not self._abs.value(child_abs)[2]:
                        valid = False
                        break
        result = self._sym_abs(node.label, valid)
        if not self._dynamic(node):
            self._static_abs[nid] = result
        return result

    def _eval_hedge(self, hedge, g_vals: Tuple[int, ...]) -> int:
        """The behavior of an rhs hedge instantiated under ``G``."""
        out = self._abs_empty
        dom_index = self._dom_index
        for node in hedge:
            if isinstance(node, RhsState):
                out = self._concat(out, g_vals[dom_index[node.state]])
            else:
                out = self._concat(out, self._eval_sym(node, g_vals))
        return out

    def eval_map(self, a: str, g_int: int) -> int:
        """``Φ`` of a tree ``a(t₁ ⋯ t_k)`` from the accumulated child map."""
        key = (a, g_int)
        cached = self._eval_memo.get(key)
        if cached is None:
            g_vals = self._maps.value(g_int)
            rules = self.transducer.rules
            phi = tuple(
                self._eval_hedge(rules.get((q, a), ()), g_vals)
                for q in self.domain
            )
            cached = self._maps.intern(phi)
            self._eval_memo[key] = cached
        return cached

    def _map_step(self, g_int: int, phi_int: int) -> int:
        """Extend the accumulated map by one more child's ``Φ``."""
        key = (g_int, phi_int)
        cached = self._step_memo.get(key)
        if cached is None:
            g_vals = self._maps.value(g_int)
            phi_vals = self._maps.value(phi_int)
            cached = self._maps.intern(
                tuple(
                    self._concat(gv, pv)
                    for gv, pv in zip(g_vals, phi_vals)
                )
            )
            self._step_memo[key] = cached
        return cached

    def bad(self, phi_int: int) -> bool:
        """Whether ``T(t) ∉ L(dout)`` for trees with behavior map ``Φ``."""
        count, label, valid, _f = self._abs.value(
            self._maps.value(phi_int)[self._q0_index]
        )
        return not (count == 1 and valid and label == self.dout.start)

    def describe(self, phi_int: int) -> str:
        """A one-line reason for a bad root behavior."""
        count, label, valid, _f = self._abs.value(
            self._maps.value(phi_int)[self._q0_index]
        )
        if count == 0:
            return "some valid input translates to the empty hedge"
        if count == 2:
            return "some valid input translates to a hedge of several trees"
        if label != self.dout.start:
            return (
                f"some valid input's output is rooted {label!r}, "
                f"not {self.dout.start!r}"
            )
        assert not valid
        return (
            "some valid input's output violates an output content model"
        )

    # ------------------------------------------------------------------
    # Fixpoint
    # ------------------------------------------------------------------
    def _register(self, a: str) -> None:
        if a in self._cells:
            return
        idfa, useful_mask, child_syms = self.schema.in_kernel_info(a)
        self._cells[a] = _Cell(a, idfa, useful_mask, child_syms)
        self.derived.setdefault(a, [])
        for c, _c_sym in child_syms:
            self._dependents.setdefault(c, []).append(a)
        self._dirty.append(a)
        self._dirty_set.add(a)

    def _mark_dependents(self, c: str) -> None:
        for a in self._dependents.get(c, ()):
            if a not in self._dirty_set:
                self._dirty.append(a)
                self._dirty_set.add(a)

    def closure_symbols(self, symbols: Iterable[str]) -> Set[str]:
        """The downward dependency closure of ``symbols``.

        A symbol's cell consumes the derived Φs of its live child symbols,
        so evaluating a restricted symbol set to *its* fixpoint needs
        exactly this closure registered — the shape a shard computes.
        """
        seen: Set[str] = set()
        stack = list(symbols)
        while stack:
            a = stack.pop()
            if a in seen:
                continue
            seen.add(a)
            _idfa, _mask, child_syms = self.schema.in_kernel_info(a)
            stack.extend(c for c, _c_sym in child_syms if c not in seen)
        return seen

    def run(
        self,
        symbols: Optional[Iterable[str]] = None,
        *,
        expand: bool = True,
    ) -> None:
        """Chaotic iteration over the per-symbol product cells.

        ``symbols`` restricts the evaluation to the downward dependency
        closure of the given input symbols (a shard's slice of the
        per-symbol cells); by default every ``din``-reachable symbol is
        registered — the complete fixpoint.

        ``expand=False`` registers *exactly* the given symbols, no
        closure: the incremental warm start pre-installs the clean child
        symbols' complete derived Φ lists (``_eval_cell`` reads them from
        the plain ``derived`` dict, no cell required) and re-runs only
        the dirty cells.
        """
        if symbols is None:
            symbols = self.din.reachable_symbols()
            if not symbols:
                return
        elif expand:
            symbols = self.closure_symbols(symbols)
            if not symbols:
                return
        for a in sorted(symbols, key=repr):
            self._register(a)
        dirty = self._dirty
        dirty_set = self._dirty_set
        cell_elapsed = self.cell_elapsed
        while dirty:
            if self.violation is not None and self.early_exit:
                return
            a = dirty.popleft()
            dirty_set.discard(a)
            tick = time.perf_counter()
            self._eval_cell(a)
            cell_elapsed[a] = (
                cell_elapsed.get(a, 0.0) + time.perf_counter() - tick
            )

    def _eval_cell(self, a: str) -> None:
        cell = self._cells[a]
        idfa = cell.idfa
        in_table = idfa.table
        in_ns = idfa.n_symbols
        in_finals = idfa.finals_mask
        useful_mask = cell.useful_mask
        n_d = idfa.n_states
        derived = self.derived
        record = self.record_edges
        engine = cell.engine
        new_this_eval: Set[int] = set()

        def note_visit(node: int) -> bool:
            new_this_eval.add(node)
            d = node % n_d
            if not in_finals >> d & 1:
                return False
            phi = self.eval_map(a, node // n_d)
            pair = (a, phi)
            if pair not in self._derived_set:
                # Materialize the witness word now: its labels reference
                # only pairs derived strictly earlier (well-foundedness of
                # the counterexample construction).
                self._derived_set.add(pair)
                self.witness[pair] = tuple(cell.engine.path(node))
                derived[a].append(phi)
                self._mark_dependents(a)
                if a == self.din.start and self.bad(phi):
                    self.violation = pair
                    if self.early_exit:
                        return True
            return False

        if engine is None:
            engine = cell.engine = ProductBFS(
                max_nodes=self.max_product_nodes,
                budget_message=(
                    "backward pre-image product exceeded {max_nodes} nodes"
                ),
            )
            before = 0
            seed = self._map_empty * n_d + idfa.initial
            if engine.push(seed, None, note_visit):
                self.work += len(engine.parents) - before
                return
        else:
            engine.max_nodes = self.max_product_nodes
            before = len(engine.parents)

        # Snapshot the Φ lists: pairs derived during this evaluation are
        # handled by the next round (the cell re-queues as its own
        # dependent when self-recursive), keeping every (node, Φ) pair
        # applied exactly once.
        child_data = []
        for c, c_sym in cell.child_syms:
            child_data.append((c, c_sym, len(derived.get(c, ()))))

        # Delta pass: apply Φs derived since the last evaluation to the
        # already-explored nodes; nodes discovered now are expanded by the
        # drain below against the full snapshot.
        existing = [
            node for node in engine.parents if node not in new_this_eval
        ]
        stop = False
        map_step = self._map_step
        for c, c_sym, snap in child_data:
            start = cell.consumed.get(c, 0)
            if start >= snap:
                continue
            cell.consumed[c] = snap
            news = derived[c][start:snap]
            for node in existing:
                d = node % n_d
                d2 = in_table[d * in_ns + c_sym]
                if d2 < 0 or not useful_mask >> d2 & 1:
                    continue
                g = node // n_d
                for phi in news:
                    succ = map_step(g, phi) * n_d + d2
                    label = (c, phi)
                    if record:
                        cell.edges.append((node, label, succ))
                    if engine.push(succ, (node, label), note_visit):
                        stop = True
                        break
                if stop:
                    break
            if stop:
                break

        if not stop:
            def successors(node: int):
                d = node % n_d
                g = node // n_d
                base = d * in_ns
                for c, c_sym, snap in child_data:
                    if not snap:
                        continue
                    d2 = in_table[base + c_sym]
                    if d2 < 0 or not useful_mask >> d2 & 1:
                        continue
                    for phi in derived[c][:snap]:
                        succ = map_step(g, phi) * n_d + d2
                        label = (c, phi)
                        if record:
                            cell.edges.append((node, label, succ))
                        yield succ, label

            engine.drain(successors, note_visit)

        self.work += len(engine.parents) - before
        if self.work > self.max_product_nodes:
            raise BudgetExceededError(
                f"backward pre-image product exceeded "
                f"{self.max_product_nodes} nodes across all input symbols"
            )

    # ------------------------------------------------------------------
    # Cross-process Φ values
    # ------------------------------------------------------------------
    # Interned behavior/map ints are private to one engine instance; the
    # shard fan-out ships Φs between processes as *externalized values*:
    # the plain tuple-of-behavior-tuples they intern.  The components are
    # engine-independent by construction — the domain/σ orders are sorted
    # and the transformation entries are kernel DFA state indices, whose
    # numbering is deterministic from the DTD content (already load-bearing
    # for the forward table merge).
    def externalize(self, phi_int: int) -> Tuple:
        """The engine-independent value of an interned Φ."""
        return tuple(
            self._abs.value(v) for v in self._maps.value(phi_int)
        )

    def internalize(self, phi_value: Tuple) -> int:
        """Intern an externalized Φ into this engine's tables."""
        return self._maps.intern(
            tuple(self._abs.intern(b) for b in phi_value)
        )

    # ------------------------------------------------------------------
    # Witness extraction
    # ------------------------------------------------------------------
    def build_tree(self, pair: PairKey) -> Tree:
        """The concrete input tree recorded for a derived pair.

        Shared sub-witnesses become shared ``Tree`` objects (trees are
        immutable), so the construction is linear in the number of
        distinct pairs even when the unfolded tree repeats subtrees.

        A single engine's witness words reference only pairs derived
        strictly earlier, so the recursion is well-founded; *merged* shard
        tables interleave different derivation schedules, where a cycle is
        theoretically possible on mutually recursive symbols — the guard
        raises :class:`WitnessCycleError` (and ``typecheck_backward``
        falls back to a local extraction run) instead of recursing forever.
        """
        memo: Dict[PairKey, Tree] = {}
        in_progress: Set[PairKey] = set()

        def build(p: PairKey) -> Tree:
            tree = memo.get(p)
            if tree is None:
                if p in in_progress:
                    raise WitnessCycleError(
                        f"witness references cycle through pair {p!r}"
                    )
                in_progress.add(p)
                tree = Tree(p[0], [build(child) for child in self.witness[p]])
                in_progress.discard(p)
                memo[p] = tree
            return tree

        return build(pair)


class WitnessCycleError(RuntimeError):
    """Merged shard witnesses formed a cycle (see ``build_tree``)."""


# ----------------------------------------------------------------------
# Shard fan-out: the per-input-symbol cells as picklable data
# ----------------------------------------------------------------------
# The backward fixpoint partitions naturally along its chaotic-iteration
# unit, the per-input-symbol product cell: a shard evaluates its assigned
# symbols (plus their downward dependency closure) to the complete least
# fixpoint and exports the derived Φs and witness words of the *assigned*
# symbols only — externalized (see BackwardEngine.externalize), so the
# values survive the process boundary.  Partitions cover the reachable
# symbols disjointly, so the merged tables carry every symbol's complete
# derived list and ``typecheck_backward(tables=merged)`` re-internalizes
# them into a fresh engine whose run() is skipped entirely.  Fixpoint
# confluence makes the merged derived *sets* — and hence the verdict —
# bit-identical to an unsharded run.


def backward_check_keys(
    transducer: TreeTransducer,
    din: DTD,
    schema: Optional[BackwardSchema] = None,
) -> List[str]:
    """The backward fan-out's check keys: the reachable input symbols.

    One key per per-symbol product cell, in the deterministic order the
    unsharded ``run()`` registers them (``schema`` is accepted for
    signature parity with :func:`~repro.core.forward.forward_check_keys`;
    the keys depend on ``din`` alone).
    """
    return sorted(din.reachable_symbols(), key=repr)


def backward_key_costs(
    keys: Sequence[str],
    schema: BackwardSchema,
    transducer: TreeTransducer,
) -> List[float]:
    """Predicted fixpoint cost of each per-symbol cell.

    The cell explores (input content DFA of ``a``) × (behavior-map
    tracker); the tracker's size follows the transition monoids of the
    tracked output content DFAs, so the model charges
    ``n_in_states × (1 + Σ_tracked n_out_states)`` per symbol — the
    measurable-shape counterpart of the forward ``n_out^m`` seed model.
    """
    out_alphabet = frozenset(transducer.alphabet | schema.dout.alphabet)
    tracked: Set[str] = set()
    for rhs in transducer.rules.values():
        for _path, node in iter_rhs_nodes(rhs):
            if isinstance(node, (RhsState, RhsCall)):
                continue
            if any(
                isinstance(child, (RhsState, RhsCall))
                for child in node.children
            ):
                tracked.add(node.label)
    monoid = 1 + sum(
        schema.out_kernel(sigma, out_alphabet).n_states
        for sigma in sorted(tracked)
    )
    costs: List[float] = []
    for a in keys:
        idfa, _mask, _child_syms = schema.in_kernel_info(a)
        costs.append(float(max(1, idfa.n_states) * monoid))
    return costs


def compute_backward_tables(
    transducer: TreeTransducer,
    din: DTD,
    dout: DTD,
    keys: Iterable[str],
    *,
    max_product_nodes: int = 500_000,
    schema: Optional[BackwardSchema] = None,
) -> Dict[str, object]:
    """One shard of the backward fixpoint: the cells of ``keys``.

    Saturates the downward dependency closure of the assigned input
    symbols (``early_exit=False`` — the merge needs complete derived
    lists) and exports the assigned symbols' Φs and witness words in
    externalized, picklable form.  A service worker calls this against
    its warm session's schema; the parent merges the shards with
    :func:`merge_backward_tables` and finishes via
    ``typecheck_backward(..., tables=merged)``.
    """
    if transducer.uses_calls():
        from repro.xpath.compile import compile_calls

        transducer = compile_calls(transducer)
    if schema is None:
        schema = BackwardSchema(din, dout)
    keys = list(keys)
    engine = BackwardEngine(
        transducer, din, dout, max_product_nodes,
        schema=schema, early_exit=False,
    )
    start = time.perf_counter()
    with _trace.span("fixpoint", engine="backward") as fix_span:
        engine.run(symbols=keys)
        fix_span.set(
            keys=len(keys),
            work=engine.work,
            key_elapsed_s={
                a: round(engine.cell_elapsed.get(a, 0.0), 6) for a in keys
            },
        )
    assigned = set(keys)
    ext_memo: Dict[int, Tuple] = {}

    def ext(phi_int: int) -> Tuple:
        value = ext_memo.get(phi_int)
        if value is None:
            value = engine.externalize(phi_int)
            ext_memo[phi_int] = value
        return value

    derived = {
        a: [ext(phi) for phi in engine.derived.get(a, ())] for a in assigned
    }
    witness = {
        (a, ext(phi)): tuple((c, ext(p)) for c, p in word)
        for (a, phi), word in engine.witness.items()
        if a in assigned
    }
    return {
        "derived": derived,
        "witness": witness,
        "work": engine.work,
        "elapsed_s": time.perf_counter() - start,
        "key_elapsed_s": {
            a: engine.cell_elapsed.get(a, 0.0) for a in assigned
        },
    }


def merge_backward_tables(
    shards: Iterable[Dict[str, object]],
) -> Dict[str, object]:
    """Union shard snapshots into one backward table set.

    Partitions are disjoint, so per-symbol derived lists concatenate
    trivially (first copy wins on overlap); ``work`` accumulates and the
    per-shard/per-key wall times collect for the planner's stats and the
    profile feedback."""
    merged: Dict[str, object] = {"derived": {}, "witness": {}, "work": 0}
    derived: Dict = merged["derived"]
    witness: Dict = merged["witness"]
    elapsed: List[float] = []
    key_elapsed: Dict[str, float] = {}
    for shard in shards:
        merged["work"] = int(merged["work"]) + int(shard.get("work", 0))
        if "elapsed_s" in shard:
            elapsed.append(float(shard["elapsed_s"]))
        key_elapsed.update(shard.get("key_elapsed_s") or {})
        for a, phis in shard["derived"].items():
            derived.setdefault(a, list(phis))
        witness.update(shard["witness"])
    if elapsed:
        merged["shard_elapsed_s"] = elapsed
    if key_elapsed:
        merged["key_elapsed_s"] = key_elapsed
    return merged


def hydrate_backward_tables(
    engine: BackwardEngine, tables: Dict[str, object]
) -> None:
    """Install merged shard tables into a fresh engine, replacing run().

    Externalized Φ values re-intern into the hydrating engine's own
    tables; the violation scan and witness unfolding then read the engine
    exactly as after a converged run."""
    for a, phis in tables["derived"].items():
        ints = [engine.internalize(value) for value in phis]
        engine.derived[a] = ints
        for phi in ints:
            engine._derived_set.add((a, phi))
    for (a, phi_value), word in tables["witness"].items():
        engine.witness[(a, engine.internalize(phi_value))] = tuple(
            (c, engine.internalize(value)) for c, value in word
        )
    engine.work = int(tables.get("work", 0))
    start = engine.din.start
    for phi in engine.derived.get(start, ()):
        if engine.bad(phi):
            engine.violation = (start, phi)
            break


def _behavior_signature(
    transducer: TreeTransducer,
) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    """The ``(domain, sigmas)`` shape of a transducer's behavior values.

    Externalized Φs are tuples over the sorted domain of behaviors whose
    transformations run over the sorted tracked-σ kernels — two
    transducers' tables are exchange-compatible exactly when these match
    (same construction as ``BackwardEngine.__init__``).
    """
    leaves: Set[str] = {transducer.initial}
    tracked: Set[str] = set()
    for rhs in transducer.rules.values():
        for _path, node in iter_rhs_nodes(rhs):
            if isinstance(node, (RhsState, RhsCall)):
                leaves.add(node.state)
            elif any(
                isinstance(child, (RhsState, RhsCall))
                for child in node.children
            ):
                tracked.add(node.label)
    return tuple(sorted(leaves)), tuple(sorted(tracked))


def changed_rule_symbols(
    transducer: TreeTransducer, base: TreeTransducer
) -> Set[str]:
    """Input symbols whose rule column differs between two transducers.

    A backward cell for input symbol ``a`` is a function of the rules of
    every symbol in ``closure_symbols({a})`` (its own rules across all
    states, plus recursively the child symbols' — behaviors mention the
    rules throughout), so a cell survives an edit exactly when its
    closure avoids this set.
    """
    from repro.transducers.transducer import _canonical_rhs

    changed: Set[str] = set()
    for key in set(transducer.rules) | set(base.rules):
        _q, b = key
        if b in changed:
            continue
        new_rhs = transducer.rules.get(key)
        old_rhs = base.rules.get(key)
        if (new_rhs is None) != (old_rhs is None):
            changed.add(b)
        elif new_rhs is not None and _canonical_rhs(new_rhs) != _canonical_rhs(old_rhs):
            changed.add(b)
    return changed


def incremental_backward_tables(
    transducer: TreeTransducer,
    base_transducer: TreeTransducer,
    din: DTD,
    dout: DTD,
    base_tables: Dict[str, object],
    *,
    max_product_nodes: int = 500_000,
    schema: Optional[BackwardSchema] = None,
) -> Optional[Tuple[Dict[str, object], Dict[str, int]]]:
    """Backward tables for ``transducer`` by delta from a base snapshot.

    Diffs the rule columns per input symbol, keeps the derived Φ lists of
    every symbol whose dependency closure avoids the changed symbols (the
    per-symbol fixpoints are untouched by the edit), pre-installs them
    into a fresh engine without registering their cells, and re-runs
    exactly the dirty cells (``run(expand=False)``) — their delta passes
    consume the pre-installed children from the plain ``derived`` dict.
    Saturating (``early_exit=False``-equivalent by construction: the
    export needs complete lists), so the snapshot hydrates into
    :func:`typecheck_backward` exactly like merged shard tables.

    Returns ``(tables, info)`` with reuse counters, or ``None`` when the
    delta path does not apply (XPath calls, alphabet change, behavior
    shape change — domain states or tracked σs differ, which re-indexes
    every externalized value).
    """
    if transducer.uses_calls() or base_transducer.uses_calls():
        return None
    if frozenset(transducer.alphabet) != frozenset(base_transducer.alphabet):
        return None
    if _behavior_signature(transducer) != _behavior_signature(base_transducer):
        return None
    if schema is None:
        schema = BackwardSchema(din, dout)

    changed = changed_rule_symbols(transducer, base_transducer)
    keys = backward_check_keys(transducer, din)

    engine = BackwardEngine(
        transducer, din, dout, max_product_nodes,
        schema=schema, early_exit=False,
    )

    closure_memo: Dict[str, Set[str]] = {}

    def closure(a: str) -> Set[str]:
        cached = closure_memo.get(a)
        if cached is None:
            cached = closure_memo[a] = engine.closure_symbols((a,))
        return cached

    base_derived: Dict[str, List[Tuple]] = base_tables["derived"]  # type: ignore
    base_witness: Dict = base_tables["witness"]  # type: ignore
    clean: Set[str] = set()
    dirty: List[str] = []
    for a in keys:
        if a in base_derived and not (closure(a) & changed):
            clean.add(a)
        else:
            dirty.append(a)

    int_memo: Dict[Tuple, int] = {}

    def internal(value: Tuple) -> int:
        phi = int_memo.get(value)
        if phi is None:
            phi = int_memo[value] = engine.internalize(value)
        return phi

    reused_pairs = 0
    for a in clean:
        ints = [internal(value) for value in base_derived[a]]
        engine.derived[a] = ints
        reused_pairs += len(ints)

    start = time.perf_counter()
    engine.run(symbols=dirty, expand=False)
    # A clean din.start carries its (possibly bad) Φs from the base run;
    # mirror the hydrate-path violation scan.
    if engine.violation is None:
        root = din.start
        for phi in engine.derived.get(root, ()):
            if engine.bad(phi):
                engine.violation = (root, phi)
                break

    ext_memo: Dict[int, Tuple] = {}

    def ext(phi_int: int) -> Tuple:
        value = ext_memo.get(phi_int)
        if value is None:
            value = ext_memo[phi_int] = engine.externalize(phi_int)
        return value

    dirty_set = set(dirty)
    derived = {
        a: (base_derived[a] if a in clean
            else [ext(phi) for phi in engine.derived.get(a, ())])
        for a in keys
    }
    witness = {
        pair: word for pair, word in base_witness.items() if pair[0] in clean
    }
    for (a, phi), word in engine.witness.items():
        if a in dirty_set:
            witness[(a, ext(phi))] = tuple((c, ext(p)) for c, p in word)
    tables = {
        "derived": derived,
        "witness": witness,
        "work": engine.work,
        "elapsed_s": time.perf_counter() - start,
    }
    info = {
        "changed_symbols": len(changed),
        "dirty_symbols": len(dirty),
        "reused_symbols": len(clean),
        "reused_pairs": reused_pairs,
        "product_nodes": engine.work,
    }
    return tables, info


# ----------------------------------------------------------------------
# The public method
# ----------------------------------------------------------------------
def _result_from_snapshot(
    snapshot: Dict[str, object],
    transducer: TreeTransducer,
    stats: Dict[str, object],
    want_counterexample: bool,
) -> TypecheckResult:
    stats["product_nodes"] = 0
    stats.update(snapshot.get("stats") or {})
    if snapshot["typechecks"]:
        return TypecheckResult(True, "backward", stats=stats)
    result = TypecheckResult(
        False, "backward", reason=str(snapshot.get("reason", "")), stats=stats
    )
    if want_counterexample:
        result.counterexample = snapshot.get("counterexample")
        if result.counterexample is not None:
            result.output = transducer.apply(result.counterexample)
    return result


def typecheck_backward(
    transducer: TreeTransducer,
    din: DTD,
    dout: DTD,
    max_product_nodes: int = 500_000,
    want_counterexample: bool = True,
    schema: Optional[BackwardSchema] = None,
    tables: Optional[Dict[str, object]] = None,
) -> TypecheckResult:
    """Sound and complete typechecking by inverse type inference.

    Decides ``∀ t ∈ L(din): T(t) ∈ L(dout)`` as emptiness of the product
    of the pre-image of the bad-output language with ``din`` (see the
    module docstring).  Verdicts agree with :func:`typecheck_forward` and
    the brute-force oracle on every instance both can run (the 200-seed
    differential suite in ``tests/backward/`` enforces this), but no
    tractability class is required: transducers outside every
    ``T^{C,K}_trac`` are accepted, with :class:`BudgetExceededError`
    signalling a blown-up behavior space instead of a class violation.

    ``schema`` is a :class:`BackwardSchema` compiled for exactly these DTD
    objects — a warm :class:`~repro.core.session.Session` passes its own,
    which also enables the per-transducer result cache (an equal-content
    transducer seen before is answered from its stored snapshot,
    ``stats["table_cache"]``).

    ``tables`` injects merged shard tables (see
    :func:`compute_backward_tables` / :func:`merge_backward_tables`): the
    engine hydrates instead of running, the result cache is bypassed, and
    the verdict is bit-identical to an unsharded run by fixpoint
    confluence.
    """
    if transducer.uses_calls():
        from repro.xpath.compile import compile_calls

        transducer = compile_calls(transducer)

    shared_schema = schema is not None
    if schema is None:
        schema = BackwardSchema(din, dout)
    elif schema.din is not din or schema.dout is not dout:
        raise ValueError("schema context was compiled for different DTD objects")

    stats: Dict[str, object] = {
        "algorithm": "backward (inverse type inference)",
        "engine": "kernel",
    }

    if din.is_empty():
        return TypecheckResult(
            True, "backward", reason="input schema is empty", stats=stats
        )

    # Root checks, mirroring the forward engine's preamble: the engine
    # itself would flag these too, but the short-circuits give the same
    # cheap answers (and the same Definition 5 strictness) as forward.
    root_rule = transducer.rules.get((transducer.initial, din.start))
    if root_rule is None:
        witness = minimal_tree(din)
        assert witness is not None
        return TypecheckResult(
            False,
            "backward",
            counterexample=witness,
            output=None,
            reason="no initial rule: the translation is empty",
            stats=stats,
        )
    if len(root_rule) != 1 or not isinstance(root_rule[0], RhsSym):
        raise ClassViolationError(
            "the rule for the input root symbol must produce a single "
            "Σ-rooted tree (Definition 5)"
        )
    if root_rule[0].label != dout.start:
        witness = minimal_tree(din)
        assert witness is not None
        return TypecheckResult(
            False,
            "backward",
            counterexample=witness,
            output=transducer.apply(witness),
            reason=(
                f"output root is {root_rule[0].label!r}, "
                f"output schema starts with {dout.start!r}"
            ),
            stats=stats,
        )

    # Per-transducer result cache (session-shared schemas only — a
    # one-shot private schema is discarded with its cache; injected shard
    # tables carry their own answer and bypass the cache entirely).
    table_key = None
    if shared_schema and tables is None:
        table_key = transducer.content_hash()
        snapshot = schema.cached_result(table_key)
        if snapshot is not None:
            stats["table_cache"] = "hit"
            _table_cache_metric("hit")
            return _result_from_snapshot(
                snapshot, transducer, stats, want_counterexample
            )

    engine = BackwardEngine(
        transducer, din, dout, max_product_nodes, schema=schema
    )
    if tables is None:
        with _trace.span("fixpoint", engine="backward") as fix_span:
            engine.run()
            fix_span.set(work=engine.work)
    else:
        hydrate_backward_tables(engine, tables)
    stats["product_nodes"] = engine.work
    stats["derived_pairs"] = len(engine.witness)
    stats["behaviors"] = len(engine._abs)
    stats["tracked_sigmas"] = len(engine.sigmas)
    stats["tracked_states"] = len(engine.domain)

    cacheable_stats = {
        key: stats[key]
        for key in ("derived_pairs", "behaviors", "tracked_sigmas",
                    "tracked_states")
    }
    if engine.violation is None:
        result = TypecheckResult(True, "backward", stats=stats)
        snapshot = {
            "typechecks": True,
            "reason": "",
            "counterexample": None,
            "stats": cacheable_stats,
        }
    else:
        reason = engine.describe(engine.violation[1])
        try:
            counterexample = engine.build_tree(engine.violation)
        except (WitnessCycleError, KeyError):
            # Merged cross-shard witness schedules can (in theory) cycle
            # on mutually recursive symbols; the verdict stands, so rerun
            # a private engine purely for witness extraction.
            local = typecheck_backward(
                transducer, din, dout, max_product_nodes,
                want_counterexample=True,
            )
            counterexample = local.counterexample
            stats["witness_fallback"] = "local"
        result = TypecheckResult(False, "backward", reason=reason, stats=stats)
        if want_counterexample:
            result.counterexample = counterexample
            result.output = (
                None if counterexample is None
                else transducer.apply(counterexample)
            )
        snapshot = {
            "typechecks": False,
            "reason": reason,
            "counterexample": counterexample,
            "stats": cacheable_stats,
        }
    if table_key is not None:
        schema.store_result(table_key, snapshot)
        stats["table_cache"] = "miss"
        _table_cache_metric("miss")
    return result
