"""Explicit export of the pre-image × input-schema product NTA.

The backward engine decides typechecking on a *demand-driven* product of
the pre-image of the bad-output language with ``din`` — only
``din``-reachable behavior maps ever materialize.  This module exports
that product as an explicit :class:`~repro.tree_automata.nta.NTA` over
the input alphabet:

* states are the derived pairs ``(input symbol, Φ)``;
* the horizontal language of ``((a, Φ), a)`` is read off the cell's
  recorded product graph — NFA states are the BFS nodes (input content
  DFA state × accumulated behavior map), transitions are the recorded
  product edges labeled by derived child pairs, and finals are the
  accepting nodes whose rule induction yields exactly ``Φ``;
* accepting states are the pairs at ``din``'s start symbol whose initial
  behavior is *bad* (output not a single valid ``dout``-tree).

By construction ``L(preimage_product_nta(T, din, dout))`` is exactly
``{t ∈ L(din) | T(t) ∉ L(dout)}``, so the instance typechecks iff the
automaton is empty — the cross-check used by ``tests/backward/`` against
the engine's verdict via the kernel NTA emptiness
(:func:`repro.tree_automata.emptiness.is_empty`), and a
:func:`~repro.tree_automata.emptiness.witness_tree` of the automaton is
a counterexample input tree.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from repro.backward.engine import BackwardEngine, BackwardSchema, PairKey
from repro.schemas.dtd import DTD
from repro.strings.nfa import NFA
from repro.transducers.transducer import TreeTransducer
from repro.tree_automata.nta import NTA


def preimage_product_nta(
    transducer: TreeTransducer,
    din: DTD,
    dout: DTD,
    max_product_nodes: int = 500_000,
    schema: Optional[BackwardSchema] = None,
) -> NTA:
    """The reachable pre-image × ``din`` product as an explicit NTA.

    Saturates the backward fixpoint (no early exit) with edge recording
    on — the full ``engine.run()``, never the sharded
    ``run(symbols=...)`` restriction: the export needs every reachable
    cell's product graph, not one shard's assigned symbols — then
    assembles the automaton from the engine's tables.  Unlike
    :func:`repro.backward.typecheck_backward` this export performs no
    Definition 5 root-shape check — the rule induction is total over
    deterministic top-down transducers.
    """
    if transducer.uses_calls():
        from repro.xpath.compile import compile_calls

        transducer = compile_calls(transducer)
    engine = BackwardEngine(
        transducer,
        din,
        dout,
        max_product_nodes,
        schema=schema,
        record_edges=True,
        early_exit=False,
    )
    engine.run()

    states: Set[PairKey] = set(engine.witness)
    state_set = frozenset(states)
    delta: Dict[Tuple[PairKey, str], NFA] = {}
    for a, cell in engine._cells.items():
        bfs = cell.engine
        if bfs is None:
            continue
        idfa = cell.idfa
        n_d = idfa.n_states
        finals_mask = idfa.finals_mask
        nodes = set(bfs.parents)
        seed = engine._map_empty * n_d + idfa.initial
        transitions: Dict[int, Dict[PairKey, Set[int]]] = {}
        for src, label, dst in cell.edges:
            transitions.setdefault(src, {}).setdefault(label, set()).add(dst)
        # Group the accepting nodes by the Φ their rule induction yields.
        by_phi: Dict[int, Set[int]] = {}
        for node in nodes:
            if finals_mask >> (node % n_d) & 1:
                by_phi.setdefault(
                    engine.eval_map(a, node // n_d), set()
                ).add(node)
        for phi, finals in by_phi.items():
            delta[((a, phi), a)] = NFA(
                nodes, state_set, transitions, {seed}, finals
            )
    finals = {
        (a, phi)
        for (a, phi) in states
        if a == din.start and engine.bad(phi)
    }
    return NTA(state_set, din.alphabet, delta, finals)
