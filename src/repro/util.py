"""Small shared utilities used across the library."""

from __future__ import annotations

import hashlib
import itertools
from typing import Hashable, Iterable, Iterator, Mapping, Sequence, TypeVar

T = TypeVar("T")


def stable_digest(*parts: str) -> str:
    """SHA-256 hex digest of a sequence of text parts.

    The digest is stable across processes and Python versions as long as the
    parts themselves are (callers canonicalize sets by sorting on ``repr``,
    which does not depend on hash randomization).  Used for the content
    hashes that key the compiled-session registry and the on-disk artifact
    cache.
    """
    h = hashlib.sha256()
    for part in parts:
        h.update(part.encode("utf-8", "backslashreplace"))
        h.update(b"\x1f")
    return h.hexdigest()


class FreshNames:
    """Generate names guaranteed not to clash with a set of reserved names.

    Used when constructions need states or symbols disjoint from existing
    ones (e.g. sink states, the ``#`` placeholder of Theorem 20).
    """

    def __init__(self, reserved: Iterable[Hashable] = ()) -> None:
        self._reserved = set(reserved)
        self._counter = itertools.count()

    def reserve(self, name: Hashable) -> None:
        self._reserved.add(name)

    def fresh(self, stem: str = "fresh") -> str:
        while True:
            candidate = f"{stem}_{next(self._counter)}"
            if candidate not in self._reserved:
                self._reserved.add(candidate)
                return candidate


def lru_store(mapping, key: Hashable, value, limit: int) -> None:
    """Insert (or refresh) ``key`` in an ``OrderedDict``-backed LRU.

    The one bounded-LRU-with-touch idiom used by the per-transducer
    caches (forward tables, shard profiles, backward result snapshots)
    and the service workers' pinned-pair registry: newest entries live at
    the end, eviction pops from the front once ``limit`` is exceeded.
    """
    mapping[key] = value
    mapping.move_to_end(key)
    while len(mapping) > limit:
        mapping.popitem(last=False)


def lru_get(mapping, key: Hashable):
    """Read ``key`` from an ``OrderedDict``-backed LRU, touching on hit
    (``None`` on miss) — the companion of :func:`lru_store`."""
    value = mapping.get(key)
    if value is not None:
        mapping.move_to_end(key)
    return value


def fresh_symbol(stem: str, reserved: Iterable[Hashable]) -> str:
    """Return ``stem`` or ``stem_0``, ``stem_1``, ... — whichever first avoids
    every name in ``reserved``."""
    taken = set(reserved)
    if stem not in taken:
        return stem
    i = 0
    while f"{stem}_{i}" in taken:
        i += 1
    return f"{stem}_{i}"


def powerset(items: Sequence[T]) -> Iterator[tuple[T, ...]]:
    """All subsets of ``items`` as tuples, smallest first."""
    for r in range(len(items) + 1):
        yield from itertools.combinations(items, r)


def first(iterable: Iterable[T], default: T | None = None) -> T | None:
    """First element of ``iterable`` or ``default`` when empty."""
    for item in iterable:
        return item
    return default


def transitive_closure(graph: Mapping[T, Iterable[T]]) -> dict[T, set[T]]:
    """Transitive closure of a directed graph given as adjacency mapping.

    Nodes that only occur as successors are included with their (possibly
    empty) successor sets.  The result maps every node to the set of nodes
    reachable from it in **one or more** steps.
    """
    nodes: set[T] = set(graph)
    for succs in graph.values():
        nodes.update(succs)
    closure: dict[T, set[T]] = {node: set(graph.get(node, ())) for node in nodes}
    changed = True
    while changed:
        changed = False
        for node in nodes:
            extra: set[T] = set()
            for succ in closure[node]:
                extra |= closure[succ] - closure[node]
            if extra:
                closure[node] |= extra
                changed = True
    return closure


def has_cycle(graph: Mapping[T, Iterable[T]]) -> bool:
    """Whether the directed graph contains a cycle (self-loops count)."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color: dict[T, int] = {}
    nodes: set[T] = set(graph)
    for succs in graph.values():
        nodes.update(succs)

    for start in nodes:
        if color.get(start, WHITE) != WHITE:
            continue
        stack: list[tuple[T, Iterator[T]]] = [(start, iter(graph.get(start, ())))]
        color[start] = GRAY
        while stack:
            node, it = stack[-1]
            advanced = False
            for succ in it:
                state = color.get(succ, WHITE)
                if state == GRAY:
                    return True
                if state == WHITE:
                    color[succ] = GRAY
                    stack.append((succ, iter(graph.get(succ, ()))))
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                stack.pop()
    return False


def strongly_connected_components(graph: Mapping[T, Iterable[T]]) -> list[set[T]]:
    """Tarjan's algorithm (iterative).  Returns SCCs in reverse topological
    order (a component is listed before any component it can reach... in fact
    Tarjan emits components in reverse topological order of the condensation).
    """
    nodes: list[T] = list(graph)
    extra: set[T] = set()
    for succs in graph.values():
        extra.update(succs)
    for node in extra:
        if node not in graph:
            nodes.append(node)

    index_of: dict[T, int] = {}
    lowlink: dict[T, int] = {}
    on_stack: set[T] = set()
    stack: list[T] = []
    counter = itertools.count()
    components: list[set[T]] = []

    for root in nodes:
        if root in index_of:
            continue
        work: list[tuple[T, Iterator[T]]] = [(root, iter(graph.get(root, ())))]
        index_of[root] = lowlink[root] = next(counter)
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in index_of:
                    index_of[succ] = lowlink[succ] = next(counter)
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(graph.get(succ, ()))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[succ])
            if not advanced:
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index_of[node]:
                    component: set[T] = set()
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.add(member)
                        if member == node:
                            break
                    components.append(component)
    return components
