"""Schema-safe XML update validation (``repro.updates``).

A small language of XML edit operations — rename, delete, insert, wrap,
optionally guarded by the parent label — compiled to the repo's
deterministic top-down :class:`~repro.transducers.transducer.TreeTransducer`
form, following the rewrite-based update verification line of Jacquemard
and Rusinowitch ("Rewrite based Verification of XML Updates"): an edit
script is *schema-safe* for a pair ``(din, dout)`` exactly when its
compiled transducer typechecks, so every engine in the repo (forward,
backward, auto, sharded, the service) answers update-validation queries
unchanged — and a chain of successive script revisions is exactly the
edit-chain workload :meth:`repro.core.session.Session.retypecheck`
accelerates.

>>> from repro.updates import Rename, DeleteNode, compile_script
>>> script = (Rename("para", "p"), DeleteNode("note", under="sec"))
>>> t = compile_script(script, din.alphabet)
>>> session.typecheck(t).typechecks          # is the update schema-safe?
"""

from repro.updates.ops import (
    DeleteNode,
    DeleteTree,
    EditOp,
    EditScript,
    InsertAfter,
    InsertBefore,
    InsertInto,
    Rename,
    Wrap,
    apply_script,
    parse_update_script,
    script_labels,
    script_str,
)
from repro.updates.compile import compile_script

__all__ = [
    "DeleteNode",
    "DeleteTree",
    "EditOp",
    "EditScript",
    "InsertAfter",
    "InsertBefore",
    "InsertInto",
    "Rename",
    "Wrap",
    "apply_script",
    "compile_script",
    "parse_update_script",
    "script_labels",
    "script_str",
]
