"""Compile edit scripts to deterministic top-down tree transducers.

The construction tracks exactly enough context to decide guards: one
state per *guarded* parent label plus one generic state for every other
context.  A node labeled ``a`` is processed in the state of its parent's
label (``u_in_a`` when some op guards on ``under=a``, the generic state
otherwise), so a rule ``(state, label)`` knows both the node's label and
whether its input parent carries a guard label — the first matching op
in script order picks the right-hand side, and unmatched nodes get the
identity rule.

Every produced transducer is non-copying (each child state occurs once
per rule), so the result sits comfortably inside ``T^{1,K}_trac`` and
all engines apply.  One caveat inherited from the transducer model:
scripts whose op matches the *root* with a destructive/splicing op
(``DeleteNode``/``DeleteTree``/``InsertBefore``/...) produce a root rule
that is not a single tree, which the typecheckers reject with
``ClassViolationError`` — guard root-reaching ops with ``under=`` or
keep the root label out of the script, exactly as :func:`apply_script`
returns ``None`` for such inputs.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.transducers.rhs import RhsNode, RhsState, RhsSym
from repro.transducers.transducer import TreeTransducer
from repro.updates.ops import (
    DeleteNode,
    DeleteTree,
    EditOp,
    EditScript,
    InsertAfter,
    InsertBefore,
    InsertInto,
    Rename,
    Wrap,
    script_labels,
)

__all__ = ["compile_script"]


def _rhs_for(op: Optional[EditOp], label: str, child_state: str) -> Tuple[RhsNode, ...]:
    keep = RhsSym(label, (RhsState(child_state),))
    if op is None:
        return (keep,)
    if isinstance(op, Rename):
        return (RhsSym(op.to, (RhsState(child_state),)),)
    if isinstance(op, DeleteNode):
        return (RhsState(child_state),)
    if isinstance(op, DeleteTree):
        return ()
    if isinstance(op, InsertBefore):
        return (RhsSym(op.new), keep)
    if isinstance(op, InsertAfter):
        return (keep, RhsSym(op.new))
    if isinstance(op, InsertInto):
        if op.position == "first":
            return (RhsSym(label, (RhsSym(op.new), RhsState(child_state))),)
        return (RhsSym(label, (RhsState(child_state), RhsSym(op.new))),)
    if isinstance(op, Wrap):
        return (RhsSym(op.wrapper, (RhsSym(label, (RhsState(child_state),)),)),)
    raise TypeError(f"unknown edit op {op!r}")


def compile_script(
    script: EditScript,
    alphabet: Iterable[str],
    *,
    state_prefix: str = "u",
) -> TreeTransducer:
    """Compile ``script`` over an input ``alphabet`` to a :class:`TreeTransducer`.

    ``alphabet`` is the set of labels input trees may use (typically
    ``din.alphabet``); the transducer's alphabet additionally includes
    every label the script introduces.  For all trees over ``alphabet``,
    ``transducer.apply(t) == apply_script(t, script)`` (both ``None``
    when the script does not map the root to a single tree).
    """
    in_alphabet = frozenset(alphabet)
    _, introduced = script_labels(script)
    guards = {op.under for op in script if op.under is not None}
    reserved = in_alphabet | introduced

    def fresh(base: str) -> str:
        name = base
        while name in reserved:
            name += "_"
        return name

    generic = fresh(f"{state_prefix}_any")
    guard_state = {g: fresh(f"{state_prefix}_in_{g}") for g in sorted(guards)}

    def ctx_state(label: str) -> str:
        return guard_state.get(label, generic)

    # Rules for every (context, input label): the generic state also
    # serves the root (no parent == no guard can match, same as an
    # unguarded parent), so it doubles as the initial state.
    contexts: Dict[str, Optional[str]] = {generic: None}
    for g, state in guard_state.items():
        contexts[state] = g

    rules: Dict[Tuple[str, str], Tuple[RhsNode, ...]] = {}
    for state, parent in contexts.items():
        for label in sorted(in_alphabet):
            op = None
            for candidate in script:
                if candidate.label != label:
                    continue
                if candidate.under is None or candidate.under == parent:
                    op = candidate
                    break
            rules[(state, label)] = _rhs_for(op, label, ctx_state(label))

    return TreeTransducer(
        states=frozenset(contexts),
        alphabet=in_alphabet | introduced,
        initial=generic,
        rules=rules,
    )
