"""Edit operations over unranked XML trees, and their reference semantics.

An *edit script* is a tuple of operations, each matching input nodes by
label and (optionally) by the label of their parent (``under=``).  For a
given node the **first** matching operation in script order applies; a
node no operation matches is copied unchanged.  Guards always refer to
the *input* tree — a node whose parent is deleted by ``DeleteNode`` is
still "under" the deleted label for guard purposes, because matching
happens before any rewriting.

The module gives the script language its reference semantics
(:func:`apply_script`, structural recursion over plain
:class:`~repro.trees.tree.Tree` values) plus a line-oriented text format
(:func:`parse_update_script` / :func:`script_str`).  The compiled,
engine-facing semantics live in :mod:`repro.updates.compile`; the two are
pinned against each other by a randomized differential in
``tests/updates/``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from repro.errors import ParseError
from repro.trees.tree import Tree

__all__ = [
    "Rename",
    "DeleteNode",
    "DeleteTree",
    "InsertBefore",
    "InsertAfter",
    "InsertInto",
    "Wrap",
    "EditOp",
    "EditScript",
    "apply_script",
    "parse_update_script",
    "script_labels",
    "script_str",
]


@dataclass(frozen=True)
class Rename:
    """Relabel matching nodes ``label`` -> ``to``, keeping their children."""

    label: str
    to: str
    under: Optional[str] = None


@dataclass(frozen=True)
class DeleteNode:
    """Delete matching nodes but splice their children into the parent."""

    label: str
    under: Optional[str] = None


@dataclass(frozen=True)
class DeleteTree:
    """Delete matching nodes together with their whole subtree."""

    label: str
    under: Optional[str] = None


@dataclass(frozen=True)
class InsertBefore:
    """Insert a fresh leaf ``new`` as the left sibling of matching nodes."""

    label: str
    new: str
    under: Optional[str] = None


@dataclass(frozen=True)
class InsertAfter:
    """Insert a fresh leaf ``new`` as the right sibling of matching nodes."""

    label: str
    new: str
    under: Optional[str] = None


@dataclass(frozen=True)
class InsertInto:
    """Insert a fresh leaf ``new`` as the first/last child of matching nodes."""

    label: str
    new: str
    position: str = "first"
    under: Optional[str] = None

    def __post_init__(self) -> None:
        if self.position not in ("first", "last"):
            raise ValueError(
                f"InsertInto position must be 'first' or 'last', got {self.position!r}"
            )


@dataclass(frozen=True)
class Wrap:
    """Wrap matching nodes in a fresh ``wrapper`` node."""

    label: str
    wrapper: str
    under: Optional[str] = None


EditOp = Union[Rename, DeleteNode, DeleteTree, InsertBefore, InsertAfter, InsertInto, Wrap]
EditScript = Tuple[EditOp, ...]


def _match(script: EditScript, label: str, parent: Optional[str]) -> Optional[EditOp]:
    """First op matching a node ``label`` whose input parent is ``parent``.

    ``parent is None`` means the root — only unguarded ops can match it.
    """
    for op in script:
        if op.label != label:
            continue
        if op.under is None or op.under == parent:
            return op
    return None


def _apply(node: Tree, parent: Optional[str], script: EditScript) -> Tuple[Tree, ...]:
    kids: List[Tree] = []
    for child in node.children:
        kids.extend(_apply(child, node.label, script))
    hedge = tuple(kids)
    op = _match(script, node.label, parent)
    if op is None:
        return (Tree(node.label, hedge),)
    if isinstance(op, Rename):
        return (Tree(op.to, hedge),)
    if isinstance(op, DeleteNode):
        return hedge
    if isinstance(op, DeleteTree):
        return ()
    if isinstance(op, InsertBefore):
        return (Tree(op.new), Tree(node.label, hedge))
    if isinstance(op, InsertAfter):
        return (Tree(node.label, hedge), Tree(op.new))
    if isinstance(op, InsertInto):
        if op.position == "first":
            return (Tree(node.label, (Tree(op.new),) + hedge),)
        return (Tree(node.label, hedge + (Tree(op.new),)),)
    if isinstance(op, Wrap):
        return (Tree(op.wrapper, (Tree(node.label, hedge),)),)
    raise TypeError(f"unknown edit op {op!r}")


def apply_script(tree: Tree, script: EditScript) -> Optional[Tree]:
    """Apply an edit script to a tree; reference semantics.

    Returns the edited tree, or ``None`` when the result is not a single
    tree (the root was deleted, spliced into several siblings, or gained
    an inserted sibling) — the same partiality as
    :meth:`TreeTransducer.apply`, which the compiled form inherits.
    """
    out = _apply(tree, None, script)
    if len(out) != 1:
        return None
    return out[0]


def script_labels(script: EditScript) -> Tuple[frozenset, frozenset]:
    """``(matched, introduced)`` label sets of a script.

    ``matched`` holds every label the script tests (targets and guards);
    ``introduced`` holds labels the script can create in its output —
    rename targets, inserted leaves, wrappers.
    """
    matched = set()
    introduced = set()
    for op in script:
        matched.add(op.label)
        if op.under is not None:
            matched.add(op.under)
        if isinstance(op, Rename):
            introduced.add(op.to)
        elif isinstance(op, (InsertBefore, InsertAfter, InsertInto)):
            introduced.add(op.new)
        elif isinstance(op, Wrap):
            introduced.add(op.wrapper)
    return frozenset(matched), frozenset(introduced)


# --- text format ----------------------------------------------------------
#
#   rename a -> b            rename every a to b
#   delete-node a under p    splice a's children into p (guard optional)
#   delete-tree a            drop the whole subtree
#   insert-before a x        fresh leaf x as left sibling of a
#   insert-after a x         fresh leaf x as right sibling of a
#   insert-first a x         fresh leaf x as first child of a
#   insert-last a x          fresh leaf x as last child of a
#   wrap a w                 wrap a in a fresh w node
#
# One op per line; blank lines and '#' comments are ignored; any op may
# end with 'under LABEL'.


def _split_guard(tokens: List[str], line: str) -> Tuple[List[str], Optional[str]]:
    if len(tokens) >= 2 and tokens[-2] == "under":
        return tokens[:-2], tokens[-1]
    if "under" in tokens:
        raise ParseError(f"malformed 'under' guard in update line: {line!r}")
    return tokens, None


def parse_update_script(text: str) -> EditScript:
    """Parse the line-oriented edit-script format into an :data:`EditScript`."""
    ops: List[EditOp] = []
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.split()
        head, rest = tokens[0], tokens[1:]
        rest, under = _split_guard(rest, line)
        if head == "rename" and len(rest) == 3 and rest[1] == "->":
            ops.append(Rename(rest[0], rest[2], under=under))
        elif head == "delete-node" and len(rest) == 1:
            ops.append(DeleteNode(rest[0], under=under))
        elif head == "delete-tree" and len(rest) == 1:
            ops.append(DeleteTree(rest[0], under=under))
        elif head == "insert-before" and len(rest) == 2:
            ops.append(InsertBefore(rest[0], rest[1], under=under))
        elif head == "insert-after" and len(rest) == 2:
            ops.append(InsertAfter(rest[0], rest[1], under=under))
        elif head == "insert-first" and len(rest) == 2:
            ops.append(InsertInto(rest[0], rest[1], position="first", under=under))
        elif head == "insert-last" and len(rest) == 2:
            ops.append(InsertInto(rest[0], rest[1], position="last", under=under))
        elif head == "wrap" and len(rest) == 2:
            ops.append(Wrap(rest[0], rest[1], under=under))
        else:
            raise ParseError(f"unrecognized update line: {line!r}")
    return tuple(ops)


def _op_str(op: EditOp) -> str:
    if isinstance(op, Rename):
        body = f"rename {op.label} -> {op.to}"
    elif isinstance(op, DeleteNode):
        body = f"delete-node {op.label}"
    elif isinstance(op, DeleteTree):
        body = f"delete-tree {op.label}"
    elif isinstance(op, InsertBefore):
        body = f"insert-before {op.label} {op.new}"
    elif isinstance(op, InsertAfter):
        body = f"insert-after {op.label} {op.new}"
    elif isinstance(op, InsertInto):
        word = "insert-first" if op.position == "first" else "insert-last"
        body = f"{word} {op.label} {op.new}"
    elif isinstance(op, Wrap):
        body = f"wrap {op.label} {op.wrapper}"
    else:
        raise TypeError(f"unknown edit op {op!r}")
    if op.under is not None:
        body += f" under {op.under}"
    return body


def script_str(script: EditScript) -> str:
    """Render a script in the text format (inverse of :func:`parse_update_script`)."""
    return "\n".join(_op_str(op) for op in script)
