"""Deterministic finite automata.

A DFA here is an NFA with a single initial state and at most one successor
per ``(state, symbol)`` pair (Section 2 of the paper).  DFAs may be
*partial*; :meth:`DFA.complete` adds an explicit sink when a total transition
function is needed (e.g. for complementation, Theorem 20).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Hashable, Iterable, Mapping, Sequence, Tuple

from repro.errors import InvalidSchemaError, NotDeterministicError
from repro.strings.nfa import NFA

State = Hashable
Symbol = Hashable


class DFA:
    """A (possibly partial) deterministic finite automaton.

    Parameters
    ----------
    states / alphabet / initial / finals:
        As for :class:`~repro.strings.nfa.NFA`, but ``initial`` is a single
        state.
    transitions:
        Mapping ``(state, symbol) -> state``.  Missing entries are undefined
        transitions (the run dies).
    """

    __slots__ = (
        "states", "alphabet", "transitions", "initial", "finals",
        "_hash", "_kernel", "_nfa", "_content_hash",
    )

    def __init__(
        self,
        states: Iterable[State],
        alphabet: Iterable[Symbol],
        transitions: Mapping[Tuple[State, Symbol], State],
        initial: State,
        finals: Iterable[State],
    ) -> None:
        self.states: FrozenSet[State] = frozenset(states)
        self.alphabet: FrozenSet[Symbol] = frozenset(alphabet)
        self.transitions: Dict[Tuple[State, Symbol], State] = dict(transitions)
        self.initial: State = initial
        self.finals: FrozenSet[State] = frozenset(finals)
        if initial not in self.states:
            raise InvalidSchemaError("initial state must be a state")
        if not self.finals <= self.states:
            raise InvalidSchemaError("final states must be states")
        for (src, symbol), tgt in self.transitions.items():
            if src not in self.states or tgt not in self.states:
                raise InvalidSchemaError("transition endpoints must be states")
            if symbol not in self.alphabet:
                raise InvalidSchemaError(f"transition on unknown symbol {symbol!r}")
        self._hash: int | None = None
        self._kernel = None
        self._nfa: NFA | None = None
        self._content_hash: str | None = None

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return f"DFA(|Q|={len(self.states)}, |Σ|={len(self.alphabet)})"

    def kernel(self):
        """The interned-integer view of this automaton (cached; the DFA is
        immutable, so the kernel form is computed at most once)."""
        if self._kernel is None:
            from repro.kernel.dfa_kernel import InternedDFA

            self._kernel = InternedDFA(self)
        return self._kernel

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DFA):
            return NotImplemented
        return (
            self.states == other.states
            and self.alphabet == other.alphabet
            and self.transitions == other.transitions
            and self.initial == other.initial
            and self.finals == other.finals
        )

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(
                (
                    self.states,
                    self.alphabet,
                    self.initial,
                    self.finals,
                    frozenset(self.transitions.items()),
                )
            )
        return self._hash

    @property
    def size(self) -> int:
        """Paper size measure ``|Q| + |Σ| + Σ|δ(q,a)|``."""
        return len(self.states) + len(self.alphabet) + len(self.transitions)

    def content_hash(self) -> str:
        """Stable digest of the automaton's exact representation.

        Hash-randomization-independent (all sets are serialized in
        ``repr``-sorted order) and stable across processes, so it can key
        the compiled-session registry and the on-disk artifact cache.  Two
        language-equivalent but structurally different DFAs hash
        differently — the hash identifies the *representation*, which is
        what the compiled artifacts are derived from.
        """
        if self._content_hash is None:
            from repro.util import stable_digest

            self._content_hash = stable_digest(
                "dfa",
                repr(sorted(self.states, key=repr)),
                repr(sorted(self.alphabet, key=repr)),
                repr(sorted(self.transitions.items(), key=repr)),
                repr(self.initial),
                repr(sorted(self.finals, key=repr)),
            )
        return self._content_hash

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def from_word(word: Sequence[Symbol], alphabet: Iterable[Symbol] = ()) -> "DFA":
        """A DFA accepting exactly ``word``."""
        sigma = set(alphabet) | set(word)
        states = list(range(len(word) + 1))
        transitions = {(i, word[i]): i + 1 for i in range(len(word))}
        return DFA(states, sigma, transitions, 0, {len(word)})

    @staticmethod
    def universal(alphabet: Iterable[Symbol]) -> "DFA":
        """A DFA accepting every word over ``alphabet``."""
        sigma = frozenset(alphabet)
        return DFA({0}, sigma, {(0, a): 0 for a in sigma}, 0, {0})

    @staticmethod
    def empty_language(alphabet: Iterable[Symbol]) -> "DFA":
        """A DFA accepting no word."""
        return DFA({0}, alphabet, {}, 0, set())

    @staticmethod
    def from_nfa(nfa: NFA) -> "DFA":
        """Interpret an NFA that happens to be deterministic as a DFA.

        Raises :class:`NotDeterministicError` when ``nfa`` has several
        initial states or a nondeterministic transition.
        """
        if len(nfa.initial) != 1:
            raise NotDeterministicError("NFA has several initial states")
        transitions: Dict[Tuple[State, Symbol], State] = {}
        for src, row in nfa.transitions.items():
            for symbol, tgts in row.items():
                if len(tgts) > 1:
                    raise NotDeterministicError(
                        f"nondeterministic transition from {src!r} on {symbol!r}"
                    )
                (tgt,) = tgts
                transitions[(src, symbol)] = tgt
        (initial,) = nfa.initial
        return DFA(nfa.states, nfa.alphabet, transitions, initial, nfa.finals)

    def to_nfa(self) -> NFA:
        """The same automaton as an :class:`NFA` (cached; both classes are
        immutable)."""
        if self._nfa is None:
            table: Dict[State, Dict[Symbol, set]] = {}
            for (src, symbol), tgt in self.transitions.items():
                table.setdefault(src, {}).setdefault(symbol, set()).add(tgt)
            self._nfa = NFA(
                self.states, self.alphabet, table, {self.initial}, self.finals
            )
        return self._nfa

    def map_states(self, mapping) -> "DFA":
        """Rename states through an injective ``mapping``."""
        return DFA(
            {mapping(q) for q in self.states},
            self.alphabet,
            {(mapping(s), a): mapping(t) for (s, a), t in self.transitions.items()},
            mapping(self.initial),
            {mapping(q) for q in self.finals},
        )

    def renumber(self) -> "DFA":
        """Canonically rename states to ``0..n-1`` by BFS order from the
        initial state (unreachable states keep arbitrary later numbers)."""
        order: Dict[State, int] = {self.initial: 0}
        frontier = deque([self.initial])
        symbols = sorted(self.alphabet, key=repr)
        while frontier:
            src = frontier.popleft()
            for symbol in symbols:
                tgt = self.transitions.get((src, symbol))
                if tgt is not None and tgt not in order:
                    order[tgt] = len(order)
                    frontier.append(tgt)
        for state in sorted(self.states - set(order), key=repr):
            order[state] = len(order)
        return self.map_states(lambda q: order[q])

    # ------------------------------------------------------------------
    # Runs
    # ------------------------------------------------------------------
    def step(self, state: State | None, symbol: Symbol) -> State | None:
        """Single transition; ``None`` represents the dead configuration."""
        if state is None:
            return None
        return self.transitions.get((state, symbol))

    def run(self, word: Iterable[Symbol], start: State | None = None) -> State | None:
        """Extended transition function δ*; ``None`` when the run dies."""
        state: State | None = self.initial if start is None else start
        for symbol in word:
            state = self.step(state, symbol)
            if state is None:
                return None
        return state

    def accepts(self, word: Iterable[Symbol]) -> bool:
        """Whether the DFA accepts ``word``."""
        return self.run(word) in self.finals

    # ------------------------------------------------------------------
    # Completion / complementation
    # ------------------------------------------------------------------
    def is_complete(self, alphabet: Iterable[Symbol] | None = None) -> bool:
        """Whether every (state, symbol) pair has a transition."""
        sigma = self.alphabet if alphabet is None else frozenset(alphabet)
        return all((q, a) in self.transitions for q in self.states for a in sigma)

    def complete(self, alphabet: Iterable[Symbol] | None = None) -> "DFA":
        """A complete DFA for the same language, adding a sink if needed.

        ``alphabet`` may enlarge the alphabet; new symbols lead to the sink.
        """
        sigma = self.alphabet | (frozenset(alphabet) if alphabet is not None else frozenset())
        if self.is_complete(sigma):
            return self if sigma == self.alphabet else DFA(
                self.states, sigma, self.transitions, self.initial, self.finals
            )
        sink = ("__sink__", len(self.states))
        while sink in self.states:
            sink = (sink, 0)
        states = set(self.states) | {sink}
        transitions = dict(self.transitions)
        for q in states:
            for a in sigma:
                transitions.setdefault((q, a), sink)
        return DFA(states, sigma, transitions, self.initial, self.finals)

    def complement(self, alphabet: Iterable[Symbol] | None = None) -> "DFA":
        """Complement w.r.t. all words over ``alphabet`` (default: own)."""
        completed = self.complete(alphabet)
        return DFA(
            completed.states,
            completed.alphabet,
            completed.transitions,
            completed.initial,
            completed.states - completed.finals,
        )

    # ------------------------------------------------------------------
    # Language queries (delegated or direct)
    # ------------------------------------------------------------------
    def is_empty(self, symbols: Iterable[Symbol] | None = None) -> bool:
        """Whether no word (over ``symbols`` if given) is accepted."""
        return self.to_nfa().is_empty(symbols)

    def some_word(self, symbols: Iterable[Symbol] | None = None):
        """A shortest accepted word, or ``None``."""
        return self.to_nfa().some_word(symbols)

    def used_symbols(self, symbols: Iterable[Symbol] | None = None):
        """Symbols occurring in at least one accepted word."""
        return self.to_nfa().used_symbols(symbols)

    def iter_words(self, max_length: int):
        """All accepted words up to ``max_length`` (testing helper)."""
        return self.to_nfa().iter_words(max_length)

    def contains(self, other: "DFA | NFA") -> bool:
        """Whether ``L(other) ⊆ L(self)``.

        Runs on the interned kernel: a pair BFS over ``(other state, own
        state-or-dead)`` with early exit at the first violating pair — no
        explicit complement automaton is ever built.
        """
        from repro.kernel.dfa_kernel import contains_dfa, contains_nfa

        if isinstance(other, DFA):
            return contains_dfa(self, other)
        return contains_nfa(self, other)

    def equivalent(self, other: "DFA") -> bool:
        """Language equivalence."""
        return self.contains(other) and other.contains(self)

    def product(self, other: "DFA", finals: str = "both") -> "DFA":
        """Product DFA over the shared alphabet.

        ``finals`` selects the acceptance condition: ``"both"`` for
        intersection, ``"left"``/``"right"`` to track one component, or
        ``"either"`` for union (requires both factors complete to be exact).

        Returns a :class:`LazyProductDFA`: the reachable pair space is
        explored entirely on the interned kernel, and the object-level
        views — the usual pair states ``(p, q)``, the transitions dict —
        decode lazily on first access.  Chained products, ``accepts`` and
        ``contains`` stay on the kernel and never pay the decode.
        """
        from repro.kernel.dfa_kernel import product_kernel

        return LazyProductDFA(product_kernel(self, other, finals))

    # ------------------------------------------------------------------
    # Minimization (Hopcroft-style partition refinement via Moore)
    # ------------------------------------------------------------------
    def minimize(self) -> "DFA":
        """Language-minimal complete DFA (Moore partition refinement).

        The result is complete over the automaton's alphabet; the dead state,
        if any, is retained only when it is reachable.  Refinement runs on
        the interned kernel (int block arrays instead of object dicts).
        """
        from repro.kernel.dfa_kernel import minimize_components

        completed = self.complete()
        states, transitions, initial, finals = minimize_components(completed)
        return DFA(
            states, completed.alphabet, transitions, initial, finals
        ).renumber()


class LazyProductDFA(DFA):
    """A product DFA backed by its interned kernel, decoded on demand.

    Construction costs exactly the kernel-side pair BFS (int tuples, flat
    tables); the seed representation — pair states ``(p, q)``, the
    transitions dict — is materialized only when an object-level view is
    first touched (``states``, ``transitions``, ``finals``, ``to_nfa``,
    equality, ...).  This fixes the decode-bound small-product regime where
    the kernel used to tie the object baseline: kernel consumers
    (``accepts``, ``contains``, chained ``product``, the forward engine)
    never decode at all.

    The decoded view is byte-for-byte the seed representation (same pair
    states, same transitions), so every downstream consumer — including
    code that compares against the object-path reference — sees the DFA it
    always saw.  Instances are immutable and picklable like plain DFAs.
    """

    __slots__ = ("_parts",)

    def __init__(self, kernel) -> None:
        # Deliberately does NOT call DFA.__init__: kernel-built products
        # are well-formed by construction and the object views stay unbuilt.
        self._kernel = kernel
        self._hash = None
        self._nfa = None
        self._content_hash = None
        self._parts = None

    def _materialize(self):
        parts = self._parts
        if parts is None:
            kernel = self._kernel
            value = kernel.states.value
            symbols = kernel.symbols.values
            n_symbols = kernel.n_symbols
            table = kernel.table
            transitions: Dict[Tuple[State, Symbol], State] = {}
            for q in range(kernel.n_states):
                base = q * n_symbols
                src = value(q)
                for a in range(n_symbols):
                    target = table[base + a]
                    if target >= 0:
                        transitions[(src, symbols[a])] = value(target)
            parts = self._parts = (
                frozenset(kernel.states.values),
                frozenset(symbols),
                transitions,
                value(kernel.initial),
                frozenset(kernel.states.unmask(kernel.finals_mask)),
            )
        return parts

    # Object-level views (shadow the parent's slot descriptors).
    states = property(lambda self: self._materialize()[0])
    transitions = property(lambda self: self._materialize()[2])
    finals = property(lambda self: self._materialize()[4])

    @property
    def alphabet(self) -> FrozenSet[Symbol]:
        # Cheap: the symbol interner is decoded already.
        return frozenset(self._kernel.symbols.values)

    @property
    def initial(self) -> State:
        # O(1): decodes a single pair.
        return self._kernel.states.value(self._kernel.initial)

    def __repr__(self) -> str:
        return (
            f"LazyProductDFA(|Q|={self._kernel.n_states}, "
            f"|Σ|={self._kernel.n_symbols})"
        )

    def accepts(self, word: Iterable[Symbol]) -> bool:
        """Kernel-side run — no decode."""
        kernel = self._kernel
        interned = kernel.intern_word(word)
        if interned is None:
            return False  # a foreign symbol kills the run
        return kernel.is_final(kernel.run(interned, kernel.initial))

    def __reduce__(self):
        # The kernel (including its PairInterner) is closure-free, so the
        # lazy view pickles as (class, kernel).
        return (LazyProductDFA, (self._kernel,))
