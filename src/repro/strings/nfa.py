"""Nondeterministic finite automata over arbitrary hashable symbols.

The definition follows Section 2 of the paper: an NFA is a tuple
``(Q, Σ, δ, I, F)`` with ``δ : Q × Σ → 2^Q``.  There are no ε-transitions —
the constructions of the paper never need them and their absence keeps runs
and products simple.

States and symbols may be *any* hashable Python values; the tree-automaton
layer exploits this by using tree-automaton states (tuples) as the alphabet
of horizontal languages.
"""

from __future__ import annotations

from collections import deque
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    Mapping,
    Sequence,
    Tuple,
    TYPE_CHECKING,
)

from repro.errors import InvalidSchemaError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.strings.dfa import DFA

State = Hashable
Symbol = Hashable
TransitionMap = Mapping[State, Mapping[Symbol, Iterable[State]]]


class NFA:
    """An ε-free nondeterministic finite automaton.

    Parameters
    ----------
    states:
        Finite set of states.
    alphabet:
        Finite set of symbols.  Words may only use these symbols; reading a
        foreign symbol simply leads to the empty state set (rejection).
    transitions:
        Nested mapping ``state -> symbol -> iterable of successor states``.
        Missing entries denote the empty successor set.
    initial:
        Set of initial states.
    finals:
        Set of accepting states.
    """

    __slots__ = (
        "states", "alphabet", "transitions", "initial", "finals",
        "_hash", "_kernel", "_useful", "_content_hash",
    )

    def __init__(
        self,
        states: Iterable[State],
        alphabet: Iterable[Symbol],
        transitions: TransitionMap,
        initial: Iterable[State],
        finals: Iterable[State],
    ) -> None:
        self.states: FrozenSet[State] = frozenset(states)
        self.alphabet: FrozenSet[Symbol] = frozenset(alphabet)
        table: Dict[State, Dict[Symbol, FrozenSet[State]]] = {}
        for src, by_symbol in transitions.items():
            if src not in self.states:
                raise InvalidSchemaError(f"transition from unknown state {src!r}")
            row: Dict[Symbol, FrozenSet[State]] = {}
            for symbol, targets in by_symbol.items():
                target_set = frozenset(targets)
                if not target_set:
                    continue
                if symbol not in self.alphabet:
                    raise InvalidSchemaError(f"transition on unknown symbol {symbol!r}")
                if not target_set <= self.states:
                    raise InvalidSchemaError(
                        f"transition to unknown state(s) {target_set - self.states!r}"
                    )
                row[symbol] = target_set
            if row:
                table[src] = row
        self.transitions: Dict[State, Dict[Symbol, FrozenSet[State]]] = table
        self.initial: FrozenSet[State] = frozenset(initial)
        self.finals: FrozenSet[State] = frozenset(finals)
        if not self.initial <= self.states:
            raise InvalidSchemaError("initial states must be states")
        if not self.finals <= self.states:
            raise InvalidSchemaError("final states must be states")
        self._hash: int | None = None
        self._kernel = None
        self._useful: FrozenSet[State] | None = None
        self._content_hash: str | None = None

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"NFA(|Q|={len(self.states)}, |Σ|={len(self.alphabet)}, "
            f"|I|={len(self.initial)}, |F|={len(self.finals)})"
        )

    def kernel(self):
        """The interned-integer view of this automaton (cached; the NFA is
        immutable, so the kernel form is computed at most once)."""
        if self._kernel is None:
            from repro.kernel.nfa_kernel import InternedNFA

            self._kernel = InternedNFA(self)
        return self._kernel

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NFA):
            return NotImplemented
        return (
            self.states == other.states
            and self.alphabet == other.alphabet
            and self.transitions == other.transitions
            and self.initial == other.initial
            and self.finals == other.finals
        )

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(
                (
                    self.states,
                    self.alphabet,
                    self.initial,
                    self.finals,
                    frozenset(
                        (src, sym, tgts)
                        for src, row in self.transitions.items()
                        for sym, tgts in row.items()
                    ),
                )
            )
        return self._hash

    @property
    def size(self) -> int:
        """Size measure used by the paper: ``|Q| + |Σ| + Σ |δ(q, a)|``."""
        return (
            len(self.states)
            + len(self.alphabet)
            + sum(len(tgts) for row in self.transitions.values() for tgts in row.values())
        )

    def content_hash(self) -> str:
        """Stable representation digest (see :meth:`DFA.content_hash`)."""
        if self._content_hash is None:
            from repro.util import stable_digest

            rows = sorted(
                (
                    (repr(src), repr(sym), repr(sorted(tgts, key=repr)))
                    for src, row in self.transitions.items()
                    for sym, tgts in row.items()
                ),
            )
            self._content_hash = stable_digest(
                "nfa",
                repr(sorted(self.states, key=repr)),
                repr(sorted(self.alphabet, key=repr)),
                repr(rows),
                repr(sorted(self.initial, key=repr)),
                repr(sorted(self.finals, key=repr)),
            )
        return self._content_hash

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def from_word(word: Sequence[Symbol], alphabet: Iterable[Symbol] = ()) -> "NFA":
        """An NFA accepting exactly ``word``."""
        sigma = set(alphabet) | set(word)
        states = list(range(len(word) + 1))
        transitions = {i: {word[i]: {i + 1}} for i in range(len(word))}
        return NFA(states, sigma, transitions, {0}, {len(word)})

    @staticmethod
    def empty_language(alphabet: Iterable[Symbol]) -> "NFA":
        """An NFA accepting the empty language."""
        return NFA({0}, alphabet, {}, {0}, set())

    @staticmethod
    def epsilon_language(alphabet: Iterable[Symbol]) -> "NFA":
        """An NFA accepting exactly the empty word."""
        return NFA({0}, alphabet, {}, {0}, {0})

    @staticmethod
    def universal(alphabet: Iterable[Symbol]) -> "NFA":
        """An NFA accepting every word over ``alphabet``."""
        sigma = frozenset(alphabet)
        return NFA({0}, sigma, {0: {a: {0} for a in sigma}}, {0}, {0})

    def map_symbols(self, mapping: Callable[[Symbol], Symbol]) -> "NFA":
        """Relabel the alphabet through ``mapping`` (must stay functional)."""
        new_alphabet = {mapping(a) for a in self.alphabet}
        table: Dict[State, Dict[Symbol, set]] = {}
        for src, row in self.transitions.items():
            new_row: Dict[Symbol, set] = {}
            for symbol, tgts in row.items():
                new_row.setdefault(mapping(symbol), set()).update(tgts)
            table[src] = new_row
        return NFA(self.states, new_alphabet, table, self.initial, self.finals)

    def map_states(self, mapping: Callable[[State], State]) -> "NFA":
        """Rename states through an injective ``mapping``."""
        table = {
            mapping(src): {sym: {mapping(t) for t in tgts} for sym, tgts in row.items()}
            for src, row in self.transitions.items()
        }
        return NFA(
            {mapping(q) for q in self.states},
            self.alphabet,
            table,
            {mapping(q) for q in self.initial},
            {mapping(q) for q in self.finals},
        )

    def with_alphabet(self, alphabet: Iterable[Symbol]) -> "NFA":
        """The same automaton over a (larger) alphabet."""
        sigma = frozenset(alphabet)
        if not self.alphabet <= sigma:
            raise InvalidSchemaError("new alphabet must contain the old one")
        return NFA(self.states, sigma, self.transitions, self.initial, self.finals)

    # ------------------------------------------------------------------
    # Runs
    # ------------------------------------------------------------------
    def step(self, sources: Iterable[State], symbol: Symbol) -> FrozenSet[State]:
        """Set of states reachable from ``sources`` by reading ``symbol``."""
        out: set = set()
        for src in sources:
            row = self.transitions.get(src)
            if row:
                out.update(row.get(symbol, ()))
        return frozenset(out)

    def run(self, word: Iterable[Symbol]) -> FrozenSet[State]:
        """Set of states reachable from the initial states on ``word``."""
        current: FrozenSet[State] = self.initial
        for symbol in word:
            if not current:
                break
            current = self.step(current, symbol)
        return current

    def accepts(self, word: Iterable[Symbol]) -> bool:
        """Whether the automaton accepts ``word``."""
        return bool(self.run(word) & self.finals)

    # ------------------------------------------------------------------
    # Reachability and language queries
    # ------------------------------------------------------------------
    def reachable_states(self, symbols: Iterable[Symbol] | None = None) -> FrozenSet[State]:
        """States reachable from the initial states, optionally restricted to
        transitions labeled by ``symbols``."""
        allowed = self.alphabet if symbols is None else frozenset(symbols)
        seen: set = set(self.initial)
        frontier = deque(self.initial)
        while frontier:
            src = frontier.popleft()
            row = self.transitions.get(src)
            if not row:
                continue
            for symbol, tgts in row.items():
                if symbol not in allowed:
                    continue
                for tgt in tgts:
                    if tgt not in seen:
                        seen.add(tgt)
                        frontier.append(tgt)
        return frozenset(seen)

    def coreachable_states(self, symbols: Iterable[Symbol] | None = None) -> FrozenSet[State]:
        """States from which a final state is reachable, optionally restricted
        to transitions labeled by ``symbols``."""
        allowed = self.alphabet if symbols is None else frozenset(symbols)
        predecessors: Dict[State, set] = {}
        for src, row in self.transitions.items():
            for symbol, tgts in row.items():
                if symbol not in allowed:
                    continue
                for tgt in tgts:
                    predecessors.setdefault(tgt, set()).add(src)
        seen: set = set(self.finals)
        frontier = deque(self.finals)
        while frontier:
            node = frontier.popleft()
            for pred in predecessors.get(node, ()):
                if pred not in seen:
                    seen.add(pred)
                    frontier.append(pred)
        return frozenset(seen)

    def is_empty(self, symbols: Iterable[Symbol] | None = None) -> bool:
        """Whether no word (over ``symbols`` if given) is accepted.

        This is the test ``δ(q, a) ∩ R* = ∅`` needed by the emptiness
        algorithm of Fig. A.1, with ``R = symbols``.
        """
        return not (self.reachable_states(symbols) & self.finals)

    def some_word(self, symbols: Iterable[Symbol] | None = None) -> Tuple[Symbol, ...] | None:
        """A shortest accepted word over ``symbols``, or ``None`` if empty."""
        allowed = self.alphabet if symbols is None else frozenset(symbols)
        if self.initial & self.finals:
            return ()
        parent: Dict[State, Tuple[State, Symbol]] = {}
        seen: set = set(self.initial)
        frontier = deque(self.initial)
        hit: State | None = None
        while frontier and hit is None:
            src = frontier.popleft()
            row = self.transitions.get(src)
            if not row:
                continue
            for symbol, tgts in row.items():
                if symbol not in allowed:
                    continue
                for tgt in tgts:
                    if tgt in seen:
                        continue
                    seen.add(tgt)
                    parent[tgt] = (src, symbol)
                    if tgt in self.finals:
                        hit = tgt
                        break
                    frontier.append(tgt)
                if hit is not None:
                    break
        if hit is None:
            return None
        word: list = []
        node = hit
        while node not in self.initial or node in parent:
            if node not in parent:
                break
            node, symbol = parent[node]
            word.append(symbol)
        word.reverse()
        return tuple(word)

    def used_symbols(self, symbols: Iterable[Symbol] | None = None) -> FrozenSet[Symbol]:
        """Symbols that occur in at least one accepted word (over ``symbols``).

        A symbol ``b`` occurs in an accepted word iff some ``b``-transition
        connects a reachable state to a coreachable state (both computed in
        the restricted automaton).
        """
        allowed = self.alphabet if symbols is None else frozenset(symbols)
        reach = self.reachable_states(allowed)
        coreach = self.coreachable_states(allowed)
        used: set = set()
        for src, row in self.transitions.items():
            if src not in reach:
                continue
            for symbol, tgts in row.items():
                if symbol in allowed and symbol not in used and tgts & coreach:
                    used.add(symbol)
        return frozenset(used)

    def accepts_finitely_many(self, symbols: Iterable[Symbol] | None = None) -> bool:
        """Whether the language (restricted to ``symbols``) is finite.

        The language is infinite iff some useful state (reachable and
        coreachable) lies on a cycle of useful states.
        """
        allowed = self.alphabet if symbols is None else frozenset(symbols)
        useful = self.reachable_states(allowed) & self.coreachable_states(allowed)
        graph: Dict[State, set] = {q: set() for q in useful}
        for src, row in self.transitions.items():
            if src not in useful:
                continue
            for symbol, tgts in row.items():
                if symbol not in allowed:
                    continue
                graph[src].update(t for t in tgts if t in useful)
        from repro.util import has_cycle

        return not has_cycle(graph)

    def useful_states(self) -> FrozenSet[State]:
        """Reachable-and-coreachable states over the full alphabet (cached;
        the automaton is immutable)."""
        if self._useful is None:
            self._useful = self.reachable_states() & self.coreachable_states()
        return self._useful

    def trim(self) -> "NFA":
        """Restrict to useful (reachable and coreachable) states."""
        useful = self.useful_states()
        table = {
            src: {
                sym: tgts & useful
                for sym, tgts in row.items()
                if tgts & useful
            }
            for src, row in self.transitions.items()
            if src in useful
        }
        if not useful:
            return NFA.empty_language(self.alphabet)
        return NFA(
            useful,
            self.alphabet,
            table,
            self.initial & useful,
            self.finals & useful,
        )

    def iter_words(self, max_length: int) -> Iterator[Tuple[Symbol, ...]]:
        """Enumerate all accepted words of length at most ``max_length``.

        Used by the brute-force typechecking oracle; exponential in general.
        """
        order = sorted(self.alphabet, key=repr)
        queue: deque[tuple[Tuple[Symbol, ...], FrozenSet[State]]] = deque()
        queue.append(((), self.initial))
        while queue:
            word, states = queue.popleft()
            if states & self.finals:
                yield word
            if len(word) >= max_length:
                continue
            for symbol in order:
                nxt = self.step(states, symbol)
                if nxt:
                    queue.append((word + (symbol,), nxt))

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def product(self, other: "NFA") -> "NFA":
        """Intersection automaton (classic product), over the shared alphabet."""
        alphabet = self.alphabet & other.alphabet
        initial = {(p, q) for p in self.initial for q in other.initial}
        states: set = set(initial)
        table: Dict[State, Dict[Symbol, set]] = {}
        frontier = deque(initial)
        while frontier:
            pair = frontier.popleft()
            p, q = pair
            row_p = self.transitions.get(p, {})
            row_q = other.transitions.get(q, {})
            if not row_p or not row_q:
                continue
            for symbol in row_p.keys() & row_q.keys():
                if symbol not in alphabet:
                    continue
                for tp in row_p[symbol]:
                    for tq in row_q[symbol]:
                        target = (tp, tq)
                        table.setdefault(pair, {}).setdefault(symbol, set()).add(target)
                        if target not in states:
                            states.add(target)
                            frontier.append(target)
        finals = {
            (p, q) for (p, q) in states if p in self.finals and q in other.finals
        }
        if not states:
            return NFA.empty_language(alphabet)
        return NFA(states, alphabet, table, initial, finals)

    def union(self, other: "NFA") -> "NFA":
        """Disjoint-union automaton accepting ``L(self) ∪ L(other)``."""
        alphabet = self.alphabet | other.alphabet
        left = self.map_states(lambda q: (0, q))
        right = other.map_states(lambda q: (1, q))
        table: Dict[State, Dict[Symbol, FrozenSet[State]]] = {}
        table.update(left.transitions)
        table.update(right.transitions)
        return NFA(
            left.states | right.states,
            alphabet,
            table,
            left.initial | right.initial,
            left.finals | right.finals,
        )

    def determinize(self) -> "DFA":
        """Subset construction.  Exponential in the worst case."""
        from repro.strings.dfa import DFA

        start = self.initial
        states: set = {start}
        transitions: Dict[Tuple[FrozenSet[State], Symbol], FrozenSet[State]] = {}
        frontier = deque([start])
        while frontier:
            subset = frontier.popleft()
            for symbol in self.alphabet:
                target = self.step(subset, symbol)
                transitions[(subset, symbol)] = target
                if target not in states:
                    states.add(target)
                    frontier.append(target)
        finals = {subset for subset in states if subset & self.finals}
        return DFA(states, self.alphabet, transitions, start, finals)

    def complement(self, alphabet: Iterable[Symbol] | None = None) -> "DFA":
        """Deterministic complement w.r.t. all words over ``alphabet``
        (default: this automaton's alphabet)."""
        return self.determinize().complement(alphabet)

    def is_universal(self) -> bool:
        """Whether every word over the alphabet is accepted (via complement)."""
        return self.complement().is_empty()

    def contains(self, other: "NFA") -> bool:
        """Whether ``L(other) ⊆ L(self)`` (via complement + product)."""
        comp = self.complement(self.alphabet | other.alphabet)
        return other.product(comp.to_nfa()).is_empty()

    def equivalent(self, other: "NFA") -> bool:
        """Language equivalence (two inclusion tests)."""
        return self.contains(other) and other.contains(self)
