"""Extended context-free grammars — the engine behind Section 5.

Section 5 reduces typechecking w.r.t. RE⁺-DTDs to inclusion tests
``L(G_{q,a,u}) ⊆ L(dout(σ))`` for extended context-free grammars whose rule
bodies are sequences of terminals and (possibly ⁺-iterated) nonterminals.
This module provides:

* :class:`ECFG` — extended CFGs with atoms ``t``, ``N`` and ``N⁺``;
* emptiness and productive-nonterminal analysis;
* the PTIME inclusion test ``L(G) ⊆ L(D)`` for a DFA ``D`` via the classic
  reachability-relation fixpoint (the paper's pushdown × complement-DFA
  emptiness, phrased without building the PDA);
* extraction of a witness word in ``L(G) \\ L(D)`` (Corollary 38).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, List, Mapping, Sequence, Tuple

from repro.errors import InvalidSchemaError
from repro.strings.dfa import DFA

Terminal = Hashable
Nonterminal = Hashable


@dataclass(frozen=True, slots=True)
class ECFGAtom:
    """One atom of a rule body: a terminal, a nonterminal, or ``N⁺``."""

    value: Hashable
    is_terminal: bool
    plus: bool = False

    def __post_init__(self) -> None:
        if self.is_terminal and self.plus:
            raise InvalidSchemaError("terminals carry no + exponent here")

    def __str__(self) -> str:
        text = str(self.value)
        if not self.is_terminal:
            text = f"<{text}>"
        return text + ("+" if self.plus else "")


def t(value: Terminal) -> ECFGAtom:
    """Terminal atom constructor."""
    return ECFGAtom(value, True)


def nt(value: Nonterminal, plus: bool = False) -> ECFGAtom:
    """Nonterminal atom constructor (optionally ⁺-iterated)."""
    return ECFGAtom(value, False, plus)


class ECFG:
    """An extended context-free grammar.

    Parameters
    ----------
    rules:
        Mapping from nonterminal to a list of alternatives; each alternative
        is a sequence of :class:`ECFGAtom`.
    start:
        The start nonterminal.
    """

    def __init__(
        self,
        rules: Mapping[Nonterminal, Sequence[Sequence[ECFGAtom]]],
        start: Nonterminal,
    ) -> None:
        self.rules: Dict[Nonterminal, List[Tuple[ECFGAtom, ...]]] = {
            head: [tuple(alt) for alt in alts] for head, alts in rules.items()
        }
        self.start = start
        if start not in self.rules:
            raise InvalidSchemaError(f"start nonterminal {start!r} has no rule")
        for head, alts in self.rules.items():
            for alt in alts:
                for atom in alt:
                    if not atom.is_terminal and atom.value not in self.rules:
                        raise InvalidSchemaError(
                            f"rule for {head!r} references undefined "
                            f"nonterminal {atom.value!r}"
                        )

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return f"ECFG(|N|={len(self.rules)}, start={self.start!r})"

    def pretty(self) -> str:
        """Human-readable listing of the grammar."""
        lines = []
        for head, alts in self.rules.items():
            bodies = " | ".join(
                " ".join(str(atom) for atom in alt) if alt else "ε" for alt in alts
            )
            lines.append(f"<{head}> → {bodies}")
        return "\n".join(lines)

    def terminals(self) -> FrozenSet[Terminal]:
        """All terminals occurring in the grammar."""
        out = set()
        for alts in self.rules.values():
            for alt in alts:
                for atom in alt:
                    if atom.is_terminal:
                        out.add(atom.value)
        return frozenset(out)

    @property
    def size(self) -> int:
        """Total number of atoms plus number of rules."""
        return len(self.rules) + sum(
            len(alt) for alts in self.rules.values() for alt in alts
        )

    # ------------------------------------------------------------------
    def productive_nonterminals(self) -> FrozenSet[Nonterminal]:
        """Nonterminals deriving at least one terminal word (fixpoint)."""
        productive: set = set()
        changed = True
        while changed:
            changed = False
            for head, alts in self.rules.items():
                if head in productive:
                    continue
                for alt in alts:
                    if all(
                        atom.is_terminal or atom.value in productive for atom in alt
                    ):
                        productive.add(head)
                        changed = True
                        break
        return frozenset(productive)

    def is_empty(self) -> bool:
        """Whether ``L(G) = ∅``."""
        return self.start not in self.productive_nonterminals()

    def is_recursive(self) -> bool:
        """Whether some nonterminal can derive a sentential form containing
        itself (the §5 grammars are non-recursive because the input DTD is)."""
        from repro.util import has_cycle

        graph: Dict[Nonterminal, set] = {}
        for head, alts in self.rules.items():
            succ = graph.setdefault(head, set())
            for alt in alts:
                for atom in alt:
                    if not atom.is_terminal:
                        succ.add(atom.value)
        return has_cycle(graph)

    def some_word(self, max_steps: int = 10_000) -> Tuple[Terminal, ...] | None:
        """A word of ``L(G)`` (shortest-derivation greedy), or ``None``."""
        words: Dict[Nonterminal, Tuple[Terminal, ...]] = {}
        changed = True
        steps = 0
        while changed and steps < max_steps:
            changed = False
            steps += 1
            for head, alts in self.rules.items():
                if head in words:
                    continue
                for alt in alts:
                    if all(atom.is_terminal or atom.value in words for atom in alt):
                        word: List[Terminal] = []
                        for atom in alt:
                            if atom.is_terminal:
                                word.append(atom.value)
                            else:
                                word.extend(words[atom.value])
                        words[head] = tuple(word)
                        changed = True
                        break
        return words.get(self.start)

    # ------------------------------------------------------------------
    # Inclusion in a regular language
    # ------------------------------------------------------------------
    def reachability_relation(
        self, dfa: DFA
    ) -> Dict[Nonterminal, Dict[Tuple, Tuple[Terminal, ...]]]:
        """For each nonterminal ``N`` the relation
        ``{(s, s') : ∃ w ∈ L(N), δ*(s, w) = s'}`` with a witness word each.

        ``dfa`` must be complete over a superset of the grammar's terminals.
        This is the PTIME core of Theorem 37.
        """
        complete = dfa.complete(self.terminals())
        relations: Dict[Nonterminal, Dict[Tuple, Tuple[Terminal, ...]]] = {
            head: {} for head in self.rules
        }

        def atom_relation(atom: ECFGAtom) -> Dict[Tuple, Tuple[Terminal, ...]]:
            if atom.is_terminal:
                return {
                    (s, complete.transitions[(s, atom.value)]): (atom.value,)
                    for s in complete.states
                }
            base = relations[atom.value]
            if not atom.plus:
                return dict(base)
            # Transitive closure under relation composition (≥ 1 iteration).
            closure = dict(base)
            frontier = dict(base)
            while frontier:
                fresh: Dict[Tuple, Tuple[Terminal, ...]] = {}
                for (s, mid), left in frontier.items():
                    for (mid2, s2), right in base.items():
                        if mid2 != mid:
                            continue
                        key = (s, s2)
                        if key not in closure and key not in fresh:
                            fresh[key] = left + right
                closure.update(fresh)
                frontier = fresh
            return closure

        changed = True
        while changed:
            changed = False
            for head, alts in self.rules.items():
                current = relations[head]
                for alt in alts:
                    # Compose the atom relations left to right.
                    partial: Dict[Tuple, Tuple[Terminal, ...]] = {
                        (s, s): () for s in complete.states
                    }
                    for atom in alt:
                        rel = atom_relation(atom)
                        composed: Dict[Tuple, Tuple[Terminal, ...]] = {}
                        for (s, mid), left in partial.items():
                            for (mid2, s2), right in rel.items():
                                if mid2 != mid:
                                    continue
                                key = (s, s2)
                                if key not in composed:
                                    composed[key] = left + right
                        partial = composed
                        if not partial:
                            break
                    for key, witness in partial.items():
                        if key not in current:
                            current[key] = witness
                            changed = True
        return relations

    def included_in_dfa(self, dfa: DFA) -> Tuple[bool, Tuple[Terminal, ...] | None]:
        """Decide ``L(G) ⊆ L(D)``; on failure return a witness word.

        Returns ``(True, None)`` or ``(False, w)`` with ``w ∈ L(G) \\ L(D)``.
        """
        complete = dfa.complete(self.terminals())
        relations = self.reachability_relation(complete)
        for (s, s2), witness in relations[self.start].items():
            if s == complete.initial and s2 not in complete.finals:
                return False, witness
        return True, None
