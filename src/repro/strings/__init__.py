"""Representations of regular string languages.

The paper parameterizes DTDs and tree automata by a class ``M`` of
representations of regular string languages (Definition 1); this package
provides the concrete classes used throughout:

* :class:`~repro.strings.nfa.NFA` — nondeterministic finite automata,
* :class:`~repro.strings.dfa.DFA` — deterministic finite automata,
* :mod:`~repro.strings.regex` — regular expressions with a parser and
  Glushkov compilation,
* :mod:`~repro.strings.replus` — the RE⁺ expressions of Section 5,
* :mod:`~repro.strings.unary` — one-letter-alphabet machinery (Lemma 27),
* :mod:`~repro.strings.cfg` — extended context-free grammars (Section 5).
"""

from repro.strings.nfa import NFA
from repro.strings.dfa import DFA
from repro.strings.regex import (
    Regex,
    Concat,
    Union,
    Star,
    Plus,
    Optional,
    Sym,
    Epsilon,
    Empty,
    parse_regex,
    regex_to_nfa,
    regex_to_dfa,
)
from repro.strings.replus import REPlus, REPlusFactor, parse_replus
from repro.strings.cfg import ECFG, ECFGAtom

__all__ = [
    "NFA",
    "DFA",
    "Regex",
    "Concat",
    "Union",
    "Star",
    "Plus",
    "Optional",
    "Sym",
    "Epsilon",
    "Empty",
    "parse_regex",
    "regex_to_nfa",
    "regex_to_dfa",
    "REPlus",
    "REPlusFactor",
    "parse_replus",
    "ECFG",
    "ECFGAtom",
]
