"""Regular expressions: AST, parser, and compilation to automata.

The library lets schemas be authored with ordinary regular expressions which
are then compiled to NFAs (Glushkov construction — ε-free, one state per
symbol occurrence) and further to DFAs.  This mirrors the paper's
parameterization of DTDs by a class of representations of regular languages:
``DTD(NFA)`` vs ``DTD(DFA)`` instances are obtained from the same textual
content models by choosing the compilation target.

Concrete syntax
---------------
* symbols: bare tokens over ``[A-Za-z0-9_#$]`` (e.g. ``title``, ``#``),
* concatenation: juxtaposition, whitespace or commas (``title author+``),
* union: ``|`` (the paper's infix ``+``; renamed to avoid clashing with the
  postfix iterator),
* postfix ``*``, ``+``, ``?``; grouping with parentheses,
* ``ε`` (or ``%e``): the empty word; ``∅`` (or ``%0``): the empty language.
"""

from __future__ import annotations

import re as _stdlib_re
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, FrozenSet, Iterator, Tuple

from repro.errors import ParseError
from repro.strings.dfa import DFA
from repro.strings.nfa import NFA


class Regex:
    """Base class of regular-expression AST nodes (immutable)."""

    __slots__ = ()

    # -- algebraic observers -------------------------------------------------
    def nullable(self) -> bool:
        """Whether ε belongs to the language."""
        raise NotImplementedError

    def symbols(self) -> FrozenSet[str]:
        """Alphabet symbols occurring in the expression."""
        raise NotImplementedError

    def _positions(self, counter: Iterator[int]) -> "Regex":
        """Copy of the AST with each symbol annotated by a unique position."""
        raise NotImplementedError

    # -- Glushkov sets (on position-annotated trees) -------------------------
    def _first(self) -> FrozenSet[Tuple[str, int]]:
        raise NotImplementedError

    def _last(self) -> FrozenSet[Tuple[str, int]]:
        raise NotImplementedError

    def _follow(self, into: Dict[int, set]) -> None:
        raise NotImplementedError

    # -- conveniences ---------------------------------------------------------
    def __or__(self, other: "Regex") -> "Regex":
        return Union((self, other))

    def then(self, other: "Regex") -> "Regex":
        return Concat((self, other))

    def star(self) -> "Regex":
        return Star(self)

    def plus(self) -> "Regex":
        return Plus(self)

    def opt(self) -> "Regex":
        return Optional(self)


@dataclass(frozen=True, slots=True)
class Empty(Regex):
    """The empty language ∅."""

    def nullable(self) -> bool:
        return False

    def symbols(self) -> FrozenSet[str]:
        return frozenset()

    def _positions(self, counter):
        return self

    def _first(self):
        return frozenset()

    def _last(self):
        return frozenset()

    def _follow(self, into):
        return None

    def __str__(self) -> str:
        return "∅"


@dataclass(frozen=True, slots=True)
class Epsilon(Regex):
    """The language {ε}."""

    def nullable(self) -> bool:
        return True

    def symbols(self) -> FrozenSet[str]:
        return frozenset()

    def _positions(self, counter):
        return self

    def _first(self):
        return frozenset()

    def _last(self):
        return frozenset()

    def _follow(self, into):
        return None

    def __str__(self) -> str:
        return "ε"


@dataclass(frozen=True, slots=True)
class Sym(Regex):
    """A single alphabet symbol (optionally position-annotated)."""

    name: str
    position: int | None = None

    def nullable(self) -> bool:
        return False

    def symbols(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def _positions(self, counter):
        return Sym(self.name, next(counter))

    def _first(self):
        return frozenset({(self.name, self.position)})

    def _last(self):
        return frozenset({(self.name, self.position)})

    def _follow(self, into):
        into.setdefault(self.position, set())

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class Concat(Regex):
    """Concatenation of two or more factors."""

    parts: Tuple[Regex, ...]

    def nullable(self) -> bool:
        return all(p.nullable() for p in self.parts)

    def symbols(self) -> FrozenSet[str]:
        out: FrozenSet[str] = frozenset()
        for p in self.parts:
            out |= p.symbols()
        return out

    def _positions(self, counter):
        return Concat(tuple(p._positions(counter) for p in self.parts))

    def _first(self):
        out: set = set()
        for p in self.parts:
            out |= p._first()
            if not p.nullable():
                break
        return frozenset(out)

    def _last(self):
        out: set = set()
        for p in reversed(self.parts):
            out |= p._last()
            if not p.nullable():
                break
        return frozenset(out)

    def _follow(self, into):
        for p in self.parts:
            p._follow(into)
        # Chain: last(p_i) × first(p_{i+1} ... skipping nullables).
        for i, p in enumerate(self.parts[:-1]):
            firsts: set = set()
            for q in self.parts[i + 1 :]:
                firsts |= q._first()
                if not q.nullable():
                    break
            for (_, pos) in p._last():
                into.setdefault(pos, set()).update(firsts)

    def __str__(self) -> str:
        rendered = []
        for p in self.parts:
            text = str(p)
            if isinstance(p, Union):
                text = f"({text})"
            rendered.append(text)
        return " ".join(rendered)


@dataclass(frozen=True, slots=True)
class Union(Regex):
    """Union (the paper's infix ``+``; written ``|`` in our syntax)."""

    parts: Tuple[Regex, ...]

    def nullable(self) -> bool:
        return any(p.nullable() for p in self.parts)

    def symbols(self) -> FrozenSet[str]:
        out: FrozenSet[str] = frozenset()
        for p in self.parts:
            out |= p.symbols()
        return out

    def _positions(self, counter):
        return Union(tuple(p._positions(counter) for p in self.parts))

    def _first(self):
        out: set = set()
        for p in self.parts:
            out |= p._first()
        return frozenset(out)

    def _last(self):
        out: set = set()
        for p in self.parts:
            out |= p._last()
        return frozenset(out)

    def _follow(self, into):
        for p in self.parts:
            p._follow(into)

    def __str__(self) -> str:
        return " | ".join(str(p) for p in self.parts)


def _wrap(inner: Regex) -> str:
    text = str(inner)
    if isinstance(inner, (Union, Concat)):
        return f"({text})"
    return text


@dataclass(frozen=True, slots=True)
class Star(Regex):
    """Kleene star."""

    inner: Regex

    def nullable(self) -> bool:
        return True

    def symbols(self) -> FrozenSet[str]:
        return self.inner.symbols()

    def _positions(self, counter):
        return Star(self.inner._positions(counter))

    def _first(self):
        return self.inner._first()

    def _last(self):
        return self.inner._last()

    def _follow(self, into):
        self.inner._follow(into)
        firsts = self.inner._first()
        for (_, pos) in self.inner._last():
            into.setdefault(pos, set()).update(firsts)

    def __str__(self) -> str:
        return f"{_wrap(self.inner)}*"


@dataclass(frozen=True, slots=True)
class Plus(Regex):
    """One-or-more iteration."""

    inner: Regex

    def nullable(self) -> bool:
        return self.inner.nullable()

    def symbols(self) -> FrozenSet[str]:
        return self.inner.symbols()

    def _positions(self, counter):
        return Plus(self.inner._positions(counter))

    def _first(self):
        return self.inner._first()

    def _last(self):
        return self.inner._last()

    def _follow(self, into):
        self.inner._follow(into)
        firsts = self.inner._first()
        for (_, pos) in self.inner._last():
            into.setdefault(pos, set()).update(firsts)

    def __str__(self) -> str:
        return f"{_wrap(self.inner)}+"


@dataclass(frozen=True, slots=True)
class Optional(Regex):
    """Zero-or-one occurrence."""

    inner: Regex

    def nullable(self) -> bool:
        return True

    def symbols(self) -> FrozenSet[str]:
        return self.inner.symbols()

    def _positions(self, counter):
        return Optional(self.inner._positions(counter))

    def _first(self):
        return self.inner._first()

    def _last(self):
        return self.inner._last()

    def _follow(self, into):
        self.inner._follow(into)

    def __str__(self) -> str:
        return f"{_wrap(self.inner)}?"


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------

_TOKEN = _stdlib_re.compile(
    r"\s*(?:(?P<sym>[A-Za-z0-9_#$]+)|(?P<eps>ε|%e)|(?P<emp>∅|%0)"
    r"|(?P<op>[()|*+?,]))"
)


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN.match(text, pos)
        if match is None:
            remainder = text[pos:].strip()
            if not remainder:
                break
            raise ParseError(f"cannot tokenize regex at ...{text[pos:pos + 12]!r}")
        pos = match.end()
        if match.lastgroup == "sym":
            tokens.append(("sym", match.group("sym")))
        elif match.lastgroup == "eps":
            tokens.append(("eps", "ε"))
        elif match.lastgroup == "emp":
            tokens.append(("emp", "∅"))
        else:
            op = match.group("op")
            if op != ",":  # commas are pure separators
                tokens.append(("op", op))
    return tokens


class _Parser:
    def __init__(self, tokens: list[tuple[str, str]], source: str) -> None:
        self.tokens = tokens
        self.index = 0
        self.source = source

    def peek(self) -> tuple[str, str] | None:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def pop(self) -> tuple[str, str]:
        token = self.peek()
        if token is None:
            raise ParseError(f"unexpected end of regex {self.source!r}")
        self.index += 1
        return token

    def parse_union(self) -> Regex:
        parts = [self.parse_concat()]
        while self.peek() == ("op", "|"):
            self.pop()
            parts.append(self.parse_concat())
        if len(parts) == 1:
            return parts[0]
        return Union(tuple(parts))

    def parse_concat(self) -> Regex:
        parts: list[Regex] = []
        while True:
            token = self.peek()
            if token is None or token in (("op", "|"), ("op", ")")):
                break
            parts.append(self.parse_postfix())
        if not parts:
            return Epsilon()
        if len(parts) == 1:
            return parts[0]
        return Concat(tuple(parts))

    def parse_postfix(self) -> Regex:
        node = self.parse_atom()
        while True:
            token = self.peek()
            if token == ("op", "*"):
                self.pop()
                node = Star(node)
            elif token == ("op", "+"):
                self.pop()
                node = Plus(node)
            elif token == ("op", "?"):
                self.pop()
                node = Optional(node)
            else:
                return node

    def parse_atom(self) -> Regex:
        kind, value = self.pop()
        if kind == "sym":
            return Sym(value)
        if kind == "eps":
            return Epsilon()
        if kind == "emp":
            return Empty()
        if (kind, value) == ("op", "("):
            inner = self.parse_union()
            closing = self.pop()
            if closing != ("op", ")"):
                raise ParseError(f"expected ')' in regex {self.source!r}")
            return inner
        raise ParseError(f"unexpected token {value!r} in regex {self.source!r}")


def parse_regex(text: str) -> Regex:
    """Parse the concrete syntax described in the module docstring."""
    parser = _Parser(_tokenize(text), text)
    node = parser.parse_union()
    if parser.peek() is not None:
        raise ParseError(f"trailing input in regex {text!r}")
    return node


# ---------------------------------------------------------------------------
# Compilation (Glushkov construction)
# ---------------------------------------------------------------------------


def regex_to_nfa(expr: Regex | str, alphabet=()) -> NFA:
    """Glushkov automaton of ``expr`` — ε-free, ``#positions + 1`` states.

    The automaton's alphabet is the union of the expression's symbols and the
    optional extra ``alphabet``.
    """
    if isinstance(expr, str):
        expr = parse_regex(expr)
    sigma = set(alphabet) | set(expr.symbols())

    counter = iter(range(1, 10**9))
    annotated = expr._positions(counter)
    first = annotated._first()
    last = annotated._last()
    follow: Dict[int, set] = {}
    annotated._follow(follow)

    label: Dict[int, str] = {}

    def record_labels(node: Regex) -> None:
        if isinstance(node, Sym):
            label[node.position] = node.name  # type: ignore[index]
        elif isinstance(node, (Concat, Union)):
            for part in node.parts:
                record_labels(part)
        elif isinstance(node, (Star, Plus, Optional)):
            record_labels(node.inner)

    record_labels(annotated)

    start = 0
    states = {start} | set(label)
    transitions: Dict[int, Dict[str, set]] = {start: {}}
    for (symbol, pos) in first:
        transitions[start].setdefault(symbol, set()).add(pos)
    for pos, successors in follow.items():
        row = transitions.setdefault(pos, {})
        for (symbol, succ) in successors:
            row.setdefault(symbol, set()).add(succ)
    finals = {pos for (_, pos) in last}
    if expr.nullable():
        finals.add(start)
    return NFA(states, sigma, transitions, {start}, finals)


def regex_to_dfa(expr: Regex | str, alphabet=(), minimize: bool = True) -> DFA:
    """Compile ``expr`` to a DFA (Glushkov + subset construction).

    With ``minimize=True`` (default) the result is the canonical minimal
    complete DFA, which keeps the DTD(DFA) instances small and reproducible.
    """
    dfa = regex_to_nfa(expr, alphabet).determinize()
    if minimize:
        dfa = dfa.minimize()
    return dfa.renumber()


@lru_cache(maxsize=4096)
def cached_regex_to_dfa(text: str, alphabet: tuple = ()) -> DFA:
    """Memoized :func:`regex_to_dfa` for textual expressions."""
    return regex_to_dfa(parse_regex(text), alphabet)
