"""RE⁺ expressions — Section 5 of the paper.

``RE⁺`` is the set of regular expressions of the form ``α₁ ⋯ α_k`` where every
``α_i`` is ``ε``, ``a`` or ``a⁺`` for an alphabet symbol ``a`` (e.g. the
content model ``title author+ chapter+``).

The module implements the calculus developed in Section 5:

* the *normal form* — factors ``a=i`` (exactly ``i``) and ``a≥i`` obtained by
  merging adjacent factors over the same symbol;
* the *minimal string* ``e_min`` and *vast strings* (Lemma 31);
* PTIME membership, inclusion, equivalence and intersection;
* compilation to a linear-size DFA (used to cross-check the calculus).
"""

from __future__ import annotations

import re as _stdlib_re
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

from repro.errors import ParseError
from repro.strings.dfa import DFA
from repro.strings.regex import Concat, Epsilon, Plus, Regex, Sym


@dataclass(frozen=True, slots=True)
class REPlusFactor:
    """A normalized factor ``symbol=count`` (exact) or ``symbol≥count``."""

    symbol: str
    count: int
    exact: bool

    def __str__(self) -> str:
        relation = "=" if self.exact else "≥"
        return f"{self.symbol}{relation}{self.count}"


class REPlus:
    """An RE⁺ expression in normal form.

    Construct from raw ``(symbol, is_plus)`` factors via :meth:`from_factors`,
    from text via :func:`parse_replus`, or directly from normalized factors.
    """

    __slots__ = ("factors",)

    def __init__(self, factors: Iterable[REPlusFactor]) -> None:
        normalized: List[REPlusFactor] = []
        for factor in factors:
            if factor.count < 0 or (factor.count == 0 and factor.exact):
                raise ParseError(f"invalid factor {factor}")
            if normalized and normalized[-1].symbol == factor.symbol:
                previous = normalized.pop()
                normalized.append(
                    REPlusFactor(
                        factor.symbol,
                        previous.count + factor.count,
                        previous.exact and factor.exact,
                    )
                )
            else:
                normalized.append(factor)
        self.factors: Tuple[REPlusFactor, ...] = tuple(normalized)

    # ------------------------------------------------------------------
    @staticmethod
    def from_factors(raw: Iterable[Tuple[str, bool]]) -> "REPlus":
        """Build from raw paper-level factors ``(a, is_plus)``."""
        return REPlus(
            REPlusFactor(symbol, 1, not is_plus) for symbol, is_plus in raw
        )

    @staticmethod
    def epsilon() -> "REPlus":
        """The RE⁺ expression denoting {ε}."""
        return REPlus(())

    # ------------------------------------------------------------------
    def __str__(self) -> str:
        if not self.factors:
            return "ε"
        parts: List[str] = []
        for factor in self.factors:
            if factor.exact:
                parts.extend([factor.symbol] * factor.count)
            else:
                parts.extend([factor.symbol] * (factor.count - 1))
                parts.append(f"{factor.symbol}+")
        return " ".join(parts)

    def __repr__(self) -> str:
        return f"REPlus({str(self)!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, REPlus):
            return NotImplemented
        return self.factors == other.factors

    def __hash__(self) -> int:
        return hash(self.factors)

    # ------------------------------------------------------------------
    def symbols(self) -> frozenset:
        """Symbols occurring in the expression (all occur in every word)."""
        return frozenset(f.symbol for f in self.factors)

    def min_string(self) -> Tuple[str, ...]:
        """The minimal string ``e_min`` (Section 5)."""
        out: List[str] = []
        for factor in self.factors:
            out.extend([factor.symbol] * factor.count)
        return tuple(out)

    def vast_string(self, slack: int = 1) -> Tuple[str, ...]:
        """An ``e``-vast string: ``y_i > x_i`` on every ``≥`` block.

        ``slack`` controls how far beyond the minimum the ``≥`` blocks go.
        """
        if slack < 1:
            raise ValueError("slack must be at least 1")
        out: List[str] = []
        for factor in self.factors:
            count = factor.count if factor.exact else factor.count + slack
            out.extend([factor.symbol] * count)
        return tuple(out)

    def is_vast(self, word: Sequence[str]) -> bool:
        """Whether ``word`` is vast w.r.t. this expression (Section 5)."""
        blocks = _blocks(word)
        if len(blocks) != len(self.factors):
            return False
        for (symbol, count), factor in zip(blocks, self.factors):
            if symbol != factor.symbol:
                return False
            if factor.exact and count != factor.count:
                return False
            if not factor.exact and count <= factor.count:
                return False
        return True

    # ------------------------------------------------------------------
    def accepts(self, word: Sequence[str]) -> bool:
        """Linear-time membership via block decomposition."""
        blocks = _blocks(word)
        if len(blocks) != len(self.factors):
            return False
        for (symbol, count), factor in zip(blocks, self.factors):
            if symbol != factor.symbol:
                return False
            if factor.exact:
                if count != factor.count:
                    return False
            elif count < factor.count:
                return False
        return True

    def contains(self, other: "REPlus") -> bool:
        """Whether ``L(other) ⊆ L(self)`` — block-wise test, PTIME.

        Equivalent, by Lemma 31, to checking that ``other``'s minimal and
        vast strings belong to ``self`` (see :meth:`contains_by_lemma31`).
        """
        if len(self.factors) != len(other.factors):
            return False
        for mine, theirs in zip(self.factors, other.factors):
            if mine.symbol != theirs.symbol:
                return False
            if mine.exact:
                if not (theirs.exact and theirs.count == mine.count):
                    return False
            elif theirs.count < mine.count:
                return False
        return True

    def contains_by_lemma31(self, other: "REPlus") -> bool:
        """Inclusion test through Lemma 31: ``{e_min, e_vast} ⊆ L(self)``."""
        return self.accepts(other.min_string()) and self.accepts(other.vast_string())

    def equivalent(self, other: "REPlus") -> bool:
        """Language equivalence (normal forms are canonical, so ``==``)."""
        return self.factors == other.factors

    def intersect(self, other: "REPlus") -> "REPlus | None":
        """The intersection as an RE⁺ expression, or ``None`` when empty.

        RE⁺ languages are closed under intersection: block sequences must
        agree symbol-wise and the per-block constraints conjoin.
        """
        if len(self.factors) != len(other.factors):
            return None
        merged: List[REPlusFactor] = []
        for mine, theirs in zip(self.factors, other.factors):
            if mine.symbol != theirs.symbol:
                return None
            if mine.exact and theirs.exact:
                if mine.count != theirs.count:
                    return None
                merged.append(mine)
            elif mine.exact:
                if mine.count < theirs.count:
                    return None
                merged.append(mine)
            elif theirs.exact:
                if theirs.count < mine.count:
                    return None
                merged.append(theirs)
            else:
                merged.append(
                    REPlusFactor(mine.symbol, max(mine.count, theirs.count), False)
                )
        return REPlus(merged)

    # ------------------------------------------------------------------
    def to_regex(self) -> Regex:
        """The expression as a generic :class:`~repro.strings.regex.Regex`."""
        parts: List[Regex] = []
        for factor in self.factors:
            if factor.exact:
                parts.extend([Sym(factor.symbol)] * factor.count)
            else:
                parts.extend([Sym(factor.symbol)] * (factor.count - 1))
                parts.append(Plus(Sym(factor.symbol)))
        if not parts:
            return Epsilon()
        if len(parts) == 1:
            return parts[0]
        return Concat(tuple(parts))

    def to_dfa(self, alphabet: Iterable[str] = ()) -> DFA:
        """Linear-size DFA: a chain with self-loops on ``≥`` block ends."""
        sigma = set(alphabet) | set(self.symbols())
        transitions: Dict[Tuple[int, str], int] = {}
        state = 0
        for factor in self.factors:
            for _ in range(factor.count):
                transitions[(state, factor.symbol)] = state + 1
                state += 1
            if not factor.exact:
                transitions[(state, factor.symbol)] = state
        return DFA(range(state + 1), sigma, transitions, 0, {state})

    def iter_words(self, max_length: int) -> Iterator[Tuple[str, ...]]:
        """All words up to ``max_length`` (testing helper)."""
        return self.to_dfa().iter_words(max_length)


def _blocks(word: Sequence[str]) -> List[Tuple[str, int]]:
    """Maximal blocks of equal adjacent symbols, e.g. ``aab`` ↦ [(a,2),(b,1)]."""
    blocks: List[Tuple[str, int]] = []
    for symbol in word:
        if blocks and blocks[-1][0] == symbol:
            blocks[-1] = (symbol, blocks[-1][1] + 1)
        else:
            blocks.append((symbol, 1))
    return blocks


_FACTOR = _stdlib_re.compile(r"\s*(?:(?P<sym>[A-Za-z0-9_#$]+)(?P<plus>\+)?|(?P<eps>ε|%e)|(?P<sep>,))")


def parse_replus(text: str) -> REPlus:
    """Parse the paper syntax, e.g. ``"title author+ chapter+"``.

    Only the RE⁺ operations are allowed; anything else raises
    :class:`~repro.errors.ParseError`.
    """
    raw: List[Tuple[str, bool]] = []
    pos = 0
    while pos < len(text):
        match = _FACTOR.match(text, pos)
        if match is None:
            remainder = text[pos:].strip()
            if not remainder:
                break
            raise ParseError(f"not an RE+ expression at ...{text[pos:pos + 12]!r}")
        pos = match.end()
        if match.group("sym"):
            raw.append((match.group("sym"), bool(match.group("plus"))))
    return REPlus.from_factors(raw)


def regex_is_replus(expr: Regex) -> bool:
    """Whether a generic regex AST is (syntactically) an RE⁺ expression."""
    if isinstance(expr, (Epsilon, Sym)):
        return True
    if isinstance(expr, Plus):
        return isinstance(expr.inner, Sym)
    if isinstance(expr, Concat):
        return all(regex_is_replus(p) for p in expr.parts)
    return False


def replus_from_regex(expr: Regex) -> REPlus:
    """Convert a generic regex AST that is RE⁺-shaped; raise otherwise."""
    raw: List[Tuple[str, bool]] = []

    def walk(node: Regex) -> None:
        if isinstance(node, Epsilon):
            return
        if isinstance(node, Sym):
            raw.append((node.name, False))
            return
        if isinstance(node, Plus) and isinstance(node.inner, Sym):
            raw.append((node.inner.name, True))
            return
        if isinstance(node, Concat):
            for part in node.parts:
                walk(part)
            return
        raise ParseError(f"{node} is not an RE+ expression")

    walk(expr)
    return REPlus.from_factors(raw)
