"""One-letter-alphabet automata — the machinery behind Lemma 27.

Lemma 27 reduces 3-CNF satisfiability to intersection emptiness of DFAs over
the unary alphabet ``{a}``: a truth assignment is encoded as a word ``a^r``
where variable ``x_i`` is true iff ``r ≡ 0 (mod p_i)`` for the ``i``-th prime
``p_i``.  This module provides the primes, the modulus automata, and an
incremental intersection-emptiness test used both by the Lemma 27 gadget and
by the Theorem 18 / 28(2) benchmark families.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.strings.dfa import DFA


def first_primes(n: int) -> List[int]:
    """The first ``n`` primes (simple sieve; n is tiny in all gadgets)."""
    if n <= 0:
        return []
    primes: List[int] = []
    candidate = 2
    while len(primes) < n:
        if all(candidate % p for p in primes):
            primes.append(candidate)
        candidate += 1
    return primes


def mod_dfa(modulus: int, residues: Iterable[int], symbol: str = "a") -> DFA:
    """DFA over ``{symbol}`` accepting ``symbol^r`` with ``r mod modulus``
    in ``residues``."""
    if modulus <= 0:
        raise ValueError("modulus must be positive")
    accepted = {r % modulus for r in residues}
    transitions = {(i, symbol): (i + 1) % modulus for i in range(modulus)}
    return DFA(range(modulus), {symbol}, transitions, 0, accepted)


def product_mod_dfa(
    moduli: Sequence[int],
    accepting: Set[Tuple[int, ...]],
    symbol: str = "a",
) -> DFA:
    """DFA over ``{symbol}`` tracking the residue vector modulo ``moduli``.

    ``accepting`` lists the accepted residue vectors.  The state space is the
    full product ``Π moduli`` — the size the paper's clause automata have.
    """
    import itertools

    states = list(itertools.product(*[range(m) for m in moduli]))
    transitions: Dict[Tuple[Tuple[int, ...], str], Tuple[int, ...]] = {}
    for vector in states:
        successor = tuple((vector[i] + 1) % moduli[i] for i in range(len(moduli)))
        transitions[(vector, symbol)] = successor
    start = tuple(0 for _ in moduli)
    return DFA(states, {symbol}, transitions, start, accepting)


def unary_word_length(dfa: DFA, symbol: str = "a") -> Dict[int, bool]:
    """Map each residue class of the DFA's eventual period to acceptance.

    Helper for tests: a unary DFA's language is eventually periodic; this
    returns acceptance for lengths ``0 .. |Q| * 2`` (enough to observe the
    period for the cycle automata used here).
    """
    out: Dict[int, bool] = {}
    state = dfa.initial
    out[0] = state in dfa.finals
    for length in range(1, 2 * len(dfa.states) + 1):
        state = dfa.step(state, symbol)
        if state is None:
            break
        out[length] = state in dfa.finals
    return out


def intersection_nonempty_word(dfas: Sequence[DFA]) -> Tuple[str, ...] | None:
    """A shortest word in ``⋂ L(A_i)`` or ``None`` when the intersection is
    empty.

    Explores the product space lazily (BFS over state vectors), which is the
    textbook PSPACE-in-general / exponential-time procedure the hardness
    results are about; the benchmarks use it as the honest baseline.
    """
    from collections import deque

    if not dfas:
        return ()
    alphabet = frozenset.intersection(*[dfa.alphabet for dfa in dfas])
    start = tuple(dfa.initial for dfa in dfas)

    def accepting(vector: Tuple) -> bool:
        return all(state in dfa.finals for state, dfa in zip(vector, dfas))

    if accepting(start):
        return ()
    seen = {start}
    frontier: deque[Tuple[Tuple, Tuple[str, ...]]] = deque([(start, ())])
    while frontier:
        vector, word = frontier.popleft()
        for symbol in alphabet:
            successor = tuple(
                dfa.step(state, symbol) for state, dfa in zip(vector, dfas)
            )
            if any(state is None for state in successor):
                continue
            if successor in seen:
                continue
            seen.add(successor)
            extended = word + (symbol,)
            if accepting(successor):
                return extended
            frontier.append((successor, extended))
    return None


def intersection_empty(dfas: Sequence[DFA]) -> bool:
    """Whether ``⋂ L(A_i) = ∅`` (see :func:`intersection_nonempty_word`)."""
    return intersection_nonempty_word(dfas) is None
