"""E-16 — Proposition 16 at scale: computing C and K stays cheap even for
transducers with thousands of rules (the analysis is a graph problem)."""

import pytest

from repro.transducers import TreeTransducer, analyze
from repro.transducers.analysis import deletion_path_width


def _layered_transducer(layers: int, width: int) -> TreeTransducer:
    """A deletion DAG of `layers` × `width` states (bounded K by design)."""
    states = {f"q_{i}_{j}" for i in range(layers) for j in range(width)} | {"q0"}
    alphabet = {"a"}
    rules = {("q0", "a"): "a(q_0_0)"}
    for i in range(layers - 1):
        for j in range(width):
            target = f"q_{i + 1}_{(j + 1) % width}"
            rules[(f"q_{i}_{j}", "a")] = f"{target} a"
    for j in range(width):
        rules[(f"q_{layers - 1}_{j}", "a")] = "a"
    return TreeTransducer(states, alphabet, "q0", rules)


@pytest.mark.parametrize("layers,width", [(8, 4), (16, 8), (32, 16)])
def test_prop16_layered(benchmark, layers, width):
    transducer = _layered_transducer(layers, width)
    analysis = benchmark(analyze, transducer)
    assert analysis.deletion_path_width == 1  # all deletion widths are 1


def _copying_chain(n: int) -> TreeTransducer:
    """K = 2^{n-1}: each level doubles (no cycles, so K is finite)."""
    states = {f"q{i}" for i in range(n)} | {"q0r"}
    rules = {("q0r", "a"): "a(q0)"}
    for i in range(n - 1):
        rules[(f"q{i}", "a")] = f"q{i + 1} q{i + 1}"
    rules[(f"q{n - 1}", "a")] = "a"
    return TreeTransducer(states, {"a"}, "q0r", rules)


@pytest.mark.parametrize("n", [4, 8, 16])
def test_prop16_doubling_chain(benchmark, n):
    transducer = _copying_chain(n)
    width = benchmark(deletion_path_width, transducer)
    assert width == 2 ** (n - 1)


def test_prop16_unbounded_detection(benchmark):
    base = _copying_chain(4)
    rules = dict(base.rules)
    rules[("q3", "a")] = "q1 q1"  # close a copying cycle
    transducer = TreeTransducer(base.states, {"a"}, "q0r", rules)
    width = benchmark(deletion_path_width, transducer)
    assert width is None
