"""E-37 — Theorem 37 / Section 5: DTD(RE⁺) with unrestricted transducers."""

import pytest

from conftest import assert_result
from repro.core import typecheck_replus, typecheck_replus_witnesses
from repro.workloads.families import replus_family


@pytest.mark.parametrize("n", [6, 12, 18])
def test_theorem37_grammar_route(benchmark, n):
    transducer, din, dout, expected = replus_family(n)
    result = benchmark(typecheck_replus, transducer, din, dout)
    assert_result(result, expected)


@pytest.mark.parametrize("n", [6, 12, 18])
def test_section6_two_witness_route(benchmark, n):
    transducer, din, dout, expected = replus_family(n)
    result = benchmark(typecheck_replus_witnesses, transducer, din, dout)
    assert_result(result, expected)


@pytest.mark.parametrize("n", [6, 12, 18])
def test_theorem37_failing(benchmark, n):
    transducer, din, dout, expected = replus_family(n, typechecks=False)
    result = benchmark(typecheck_replus, transducer, din, dout)
    assert_result(result, expected)
