"""E-18 / E-27 / E-28 — the hardness families, measured.

These runs are intentionally super-polynomial: the point of Theorems 18/28
and Lemma 27 is that no algorithm can stay polynomial on these families
(unless PSPACE/NP collapse); the timings document the blow-up at small n.
"""

import pytest

from conftest import assert_result
from repro.core import typecheck_forward
from repro.hardness import cnf_to_unary_dfas, random_cnf3
from repro.hardness.dfa_intersection import theorem18_instance
from repro.hardness.xpath_gadgets import theorem28_2_instance
from repro.strings.unary import intersection_nonempty_word, mod_dfa

_PRIMES = (2, 3, 5, 7, 11, 13, 17, 19)


def test_theorem18_family(benchmark):
    """The minimal real instance (mod-2 and mod-3 DFAs): a complete run."""
    dfas = [mod_dfa(2, {1}), mod_dfa(3, {1})]
    transducer, din, dout = theorem18_instance(dfas)
    result = benchmark.pedantic(
        lambda: typecheck_forward(
            transducer, din, dout, want_counterexample=False
        ),
        rounds=1,
        iterations=1,
    )
    assert_result(result, False)  # CRT: the intersection is non-empty


def test_theorem18_empty_intersection(benchmark):
    # Two contradictory parity automata force emptiness: typechecks.
    dfas = [mod_dfa(2, {0}), mod_dfa(2, {1})]
    transducer, din, dout = theorem18_instance(dfas)
    result = benchmark.pedantic(
        lambda: typecheck_forward(
            transducer, din, dout, want_counterexample=False
        ),
        rounds=1,
        iterations=1,
    )
    assert_result(result, True)


def test_theorem18_blowup_detected(benchmark):
    """Four prime moduli: the PSPACE-hardness frontier manifests as a
    guarded super-polynomial blow-up."""
    from repro.errors import BudgetExceededError

    dfas = [mod_dfa(p, {1}) for p in _PRIMES[:4]]
    transducer, din, dout = theorem18_instance(dfas)

    def run():
        try:
            typecheck_forward(
                transducer,
                din,
                dout,
                want_counterexample=False,
                max_product_nodes=50_000,
            )
            return "finished"
        except BudgetExceededError:
            return "blow-up"

    assert benchmark(run) == "blow-up"


@pytest.mark.parametrize("num_vars", [3, 4, 5])
def test_lemma27_sat_gadget(benchmark, num_vars):
    cnf = random_cnf3(num_vars=num_vars, num_clauses=2 * num_vars)
    dfas = cnf_to_unary_dfas(cnf)

    def solve():
        return intersection_nonempty_word(dfas)

    benchmark(solve)


@pytest.mark.parametrize("n", [2, 3])
def test_theorem28_2_xpath_gadget(benchmark, n):
    """The XPath{//} gadget escapes T_trac after compilation — detected in
    polynomial time by the Prop. 16 analysis (the coNP-hardness frontier)."""
    from repro.errors import ClassViolationError

    dfas = [mod_dfa(p, {1}) for p in _PRIMES[:n]]
    transducer, din, dout = theorem28_2_instance(dfas)

    def run():
        try:
            typecheck_forward(transducer, din, dout, want_counterexample=False)
            return "finished"
        except ClassViolationError:
            return "outside-T_trac"

    assert benchmark(run) == "outside-T_trac"
