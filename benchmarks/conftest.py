"""Shared benchmark helpers."""

def assert_result(result, expected: bool) -> None:
    """Benchmarks still verify correctness: a fast wrong answer is no
    reproduction."""
    assert result.typechecks == expected
