"""E-F1..E-F4 — the paper's figures, regenerated.

* Fig. 1: the XSLT program of the Example 6 transducer;
* Fig. 2: the Example 7 translation;
* Fig. 3: the book document and both Example 10 transformations;
* Fig. 4 / Example 17: the deletion-path graph analysis (C = 3, K = 6).
"""

from repro.transducers import analyze, to_xslt
from repro.transducers.analysis import deletion_path_graph, deletion_path_width
from repro.workloads.books import (
    book_dtd,
    example11_output_dtd,
    fig3_document,
    toc_transducer,
    toc_with_summary_transducer,
)
from repro.workloads.examples_paper import (
    example6_transducer,
    example7_expected_output,
    example7_tree,
    example12_transducer,
)


def test_fig1_xslt_export(benchmark):
    transducer = example6_transducer()
    xslt = benchmark(to_xslt, transducer)
    assert xslt.count("<xsl:template") == 4
    assert '<xsl:template match="b" mode="q">' in xslt


def test_fig2_translation(benchmark):
    transducer = example6_transducer()
    tree = example7_tree()
    output = benchmark(transducer.apply, tree)
    assert output == example7_expected_output()


def test_fig3_document_validation(benchmark):
    dtd = book_dtd()
    document = fig3_document()
    assert benchmark(dtd.accepts, document)


def test_fig3_toc_transformation(benchmark):
    document = fig3_document()
    toc = toc_transducer()
    output = benchmark(toc.apply, document)
    # Fig. 3's book: chapter 1 has 3 section titles, chapter 2 has 1.
    labels = [child.label for child in output.children]
    assert labels.count("chapter") == 2
    assert labels.count("title") == 1 + 3 + 1 + 1 + 1  # book + per-chapter titles


def test_fig3_summary_typechecks_example11(benchmark):
    from repro.core import typecheck_forward

    result = benchmark(
        typecheck_forward,
        toc_with_summary_transducer(),
        book_dtd(),
        example11_output_dtd(),
    )
    assert result.typechecks


def test_fig4_deletion_path_graph(benchmark):
    transducer = example12_transducer()
    edges, cost = benchmark(deletion_path_graph, transducer)
    assert cost[(("q1", "a"), ("q2", "a"))] == 2


def test_fig4_deletion_path_width(benchmark):
    transducer = example12_transducer()
    width = benchmark(deletion_path_width, transducer)
    assert width == 6  # Example 17


def test_fig4_full_analysis(benchmark):
    analysis = benchmark(analyze, example12_transducer())
    assert analysis.copying_width == 3
    assert analysis.deletion_path_width == 6
