"""E-T1 — Table 1: the complexity landscape, measured.

Table 1 of the paper classifies TC[T, S] for T ∈ {d, nd} × {c, bc} and
S ∈ {NTA, DTA, DTD(NFA), DTD(DFA)}.  These benchmarks realize one scalable
family per regime:

* the tractable cell (nd, bc, DTD(DFA)) and the paper's new tractable
  classes (T_trac with deletion; DTD(RE⁺) with d, c) scale polynomially;
* the intractable regimes are represented by their hardness families
  (Theorem 18 — deletion × copying; DTD(NFA) determinization; unary-DFA
  intersection), run at small sizes where their super-polynomial growth is
  already visible in the timings.
"""

import pytest

from conftest import assert_result
from repro.core import typecheck_forward, typecheck_replus
from repro.hardness.dfa_intersection import theorem18_instance
from repro.schemas import DTD
from repro.strings.unary import mod_dfa
from repro.workloads.families import filtering_family, nd_bc_family, replus_family

_PRIMES = (2, 3, 5, 7, 11, 13, 17, 19)


@pytest.mark.parametrize("n", [4, 8, 16])
def test_table1_nd_bc_dtd_dfa(benchmark, n):
    """Row (nd, bc) × DTD(DFA): the PTIME cell of Table 1."""
    transducer, din, dout, expected = nd_bc_family(n)
    result = benchmark(typecheck_forward, transducer, din, dout)
    assert_result(result, expected)


@pytest.mark.parametrize("n", [4, 8, 16])
def test_table1_d_bc_dtd_dfa_trac(benchmark, n):
    """Row (d, bc) × DTD(DFA), restricted to T_trac: the paper's new PTIME
    class (Theorem 15) — deletion is free when it does not copy."""
    transducer, din, dout, expected = filtering_family(n)
    result = benchmark(typecheck_forward, transducer, din, dout)
    assert_result(result, expected)


@pytest.mark.parametrize("n", [6, 10, 14])
def test_table1_d_c_replus(benchmark, n):
    """Row (d, c) × DTD(RE⁺): tractable despite unbounded copying and
    deletion (Theorem 37)."""
    transducer, din, dout, expected = replus_family(n)
    result = benchmark(typecheck_replus, transducer, din, dout)
    assert_result(result, expected)


def test_table1_d_c_dtd_dfa_hard(benchmark):
    """Row (d, c) × DTD(DFA): the EXPTIME/PSPACE regime, exercised through
    the *minimal* Theorem 18 instance (two real DFAs).  A single complete
    run takes seconds where the tractable cells take milliseconds — the
    blow-up of |dout|^{2M} made visible."""
    dfas = [mod_dfa(2, {1}), mod_dfa(3, {1})]
    transducer, din, dout = theorem18_instance(dfas)
    result = benchmark.pedantic(
        lambda: typecheck_forward(
            transducer, din, dout, want_counterexample=False
        ),
        rounds=1,
        iterations=1,
    )
    # ⋂ ≡ 1 mod p_i is non-empty by CRT: never typechecks.
    assert_result(result, False)


def test_table1_d_c_dtd_dfa_blowup(benchmark):
    """One step further (four prime moduli): the behavior-tuple space
    |dout|^{2M} exceeds any reasonable budget; the complete engine detects
    the blow-up instead of running forever — Table 1's EXPTIME entry,
    observed."""
    from repro.errors import BudgetExceededError

    dfas = [mod_dfa(p, {1}) for p in _PRIMES[:4]]
    transducer, din, dout = theorem18_instance(dfas)

    def run():
        try:
            typecheck_forward(
                transducer,
                din,
                dout,
                want_counterexample=False,
                max_product_nodes=50_000,
            )
            return "finished"
        except BudgetExceededError:
            return "blow-up"

    assert benchmark(run) == "blow-up"


@pytest.mark.parametrize("n", [4, 6, 8])
def test_table1_dtd_nfa_determinization_cost(benchmark, n):
    """Column DTD(NFA): the subset-construction cost the paper charges to
    nondeterministic schemas — (a|b)* a (a|b)^{n-1} needs 2^n DFA states."""
    suffix = " ".join(["(a | b)"] * (n - 1))
    din = DTD({"r": f"(a | b)* a {suffix}"}, start="r")

    def compile_content():
        din._dfa_cache.clear()
        return din.content_dfa("r")

    dfa = benchmark(compile_content)
    assert len(dfa.states) >= 2 ** (n - 1)
