"""E-38 / E-39 — Corollaries 38 and 39: counterexample generation and
almost-always typechecking."""

import pytest

from repro.core import (
    counterexample_nta,
    typecheck_forward,
    typecheck_replus,
    typechecks_almost_always,
)
from repro.schemas import DTD
from repro.tree_automata import is_finite, witness_tree
from repro.workloads.books import book_dtd, toc_transducer
from repro.workloads.families import filtering_family, replus_family


def _failing_books():
    din = book_dtd()
    dout = DTD(
        {"book": "title (chapter title title?)*"},
        start="book",
        alphabet=din.alphabet,
    )
    return toc_transducer(), din, dout


def test_cor38_counterexample_forward(benchmark):
    transducer, din, dout = _failing_books()

    def run():
        return typecheck_forward(transducer, din, dout)

    result = benchmark(run)
    assert not result.typechecks
    assert result.verify(transducer, din.accepts, dout.accepts)


@pytest.mark.parametrize("n", [6, 12])
def test_cor38_counterexample_replus(benchmark, n):
    transducer, din, dout, _ = replus_family(n, typechecks=False)
    result = benchmark(typecheck_replus, transducer, din, dout)
    assert not result.typechecks
    assert result.counterexample is not None


def test_cor38_witness_from_cex_nta(benchmark):
    transducer, din, dout = _failing_books()
    nta = counterexample_nta(transducer, din, dout)
    witness = benchmark(witness_tree, nta)
    assert witness is not None
    assert din.accepts(witness)
    assert not dout.accepts(transducer.apply(witness))


def test_cor39_almost_always_negative(benchmark):
    transducer, din, dout = _failing_books()
    answer = benchmark(typechecks_almost_always, transducer, din, dout)
    assert answer is False  # section chains pump infinitely many violations


@pytest.mark.parametrize("n", [4, 8])
def test_cor39_almost_always_positive(benchmark, n):
    transducer, din, dout, _ = filtering_family(n)
    answer = benchmark(typechecks_almost_always, transducer, din, dout)
    assert answer is True  # it fully typechecks: zero counterexamples


def test_cor39_finiteness_on_cex_nta(benchmark):
    din = DTD({"r": "a*"}, start="r")
    from repro.transducers import TreeTransducer

    t = TreeTransducer(
        {"q"}, {"r", "a"}, "q", {("q", "r"): "r(q)", ("q", "a"): "a"}
    )
    dout = DTD({"r": "a+"}, start="r")  # only r() fails: finite
    nta = counterexample_nta(t, din, dout)
    assert benchmark(is_finite, nta)
