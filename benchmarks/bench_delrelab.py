"""E-20 — Theorem 20: T_del-relab w.r.t. DTAc(DFA).

The pipeline is polynomial but the degree is high (product of image and
lifted-complement automata with pair-alphabet horizontal products); the
measured growth over the alphabet-size parameter documents that: ≈25 ms
(n=2) → ≈0.4 s (n=4) on this container.  Larger sizes run as single rounds.
"""

import pytest

from conftest import assert_result
from repro.core import typecheck_delrelab
from repro.schemas import dtd_to_dtac, dtd_to_nta
from repro.workloads.families import relabeling_family


@pytest.mark.parametrize("n", [2, 3])
def test_theorem20_scaling(benchmark, n):
    transducer, din, dout, expected = relabeling_family(n)
    ain = dtd_to_nta(din)
    aout = dtd_to_dtac(dout)
    result = benchmark(
        typecheck_delrelab, transducer, ain, aout, check_output_class=False
    )
    assert_result(result, expected)


def test_theorem20_scaling_n4(benchmark):
    transducer, din, dout, expected = relabeling_family(4)
    ain = dtd_to_nta(din)
    aout = dtd_to_dtac(dout)
    result = benchmark.pedantic(
        lambda: typecheck_delrelab(
            transducer, ain, aout, check_output_class=False
        ),
        rounds=1,
        iterations=1,
    )
    assert_result(result, expected)


@pytest.mark.parametrize("n", [2, 3])
def test_theorem20_failing(benchmark, n):
    transducer, din, dout, expected = relabeling_family(n, typechecks=False)
    ain = dtd_to_nta(din)
    aout = dtd_to_dtac(dout)
    result = benchmark(
        typecheck_delrelab, transducer, ain, aout, check_output_class=False
    )
    assert_result(result, expected)


@pytest.mark.parametrize("n", [2, 4])
def test_lemma19_image_construction(benchmark, n):
    from repro.core.delrelab import wrap_deleting_states
    from repro.transducers import image_nta

    transducer, din, _, _ = relabeling_family(n)
    ain = dtd_to_nta(din)
    wrapped = wrap_deleting_states(transducer)
    image = benchmark(image_nta, ain, wrapped)
    assert image.states
