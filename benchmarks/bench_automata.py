"""E-FA1 — Fig. A.1 and Proposition 4: tree-automaton decision procedures."""

import pytest

from repro.schemas import DTD, dtd_to_nta
from repro.tree_automata import (
    is_empty,
    is_finite,
    reachable_states_fig_a1,
    witness_dag,
)


def _chain_dtd(n: int) -> DTD:
    rules = {f"s{i}": f"s{i + 1} s{i + 1}?" for i in range(n)}
    return DTD(rules, start="s0", alphabet={f"s{n}"})


@pytest.mark.parametrize("n", [8, 16, 32])
def test_fig_a1_verbatim_emptiness(benchmark, n):
    nta = dtd_to_nta(_chain_dtd(n))
    reachable = benchmark(reachable_states_fig_a1, nta)
    assert "s0" in reachable


@pytest.mark.parametrize("n", [8, 16, 32])
def test_worklist_emptiness(benchmark, n):
    nta = dtd_to_nta(_chain_dtd(n))
    assert not benchmark(is_empty, nta)


@pytest.mark.parametrize("n", [8, 16, 32])
def test_prop4_witness_generation(benchmark, n):
    # The witness is a DAG description: its unfolding has 2^n+ nodes.
    nta = dtd_to_nta(_chain_dtd(n))
    dag = benchmark(witness_dag, nta)
    assert dag is not None and dag.label == "s0"


@pytest.mark.parametrize("n", [8, 16, 32])
def test_prop4_finiteness(benchmark, n):
    nta = dtd_to_nta(_chain_dtd(n))
    assert benchmark(is_finite, nta)  # the chain DTD is finite
