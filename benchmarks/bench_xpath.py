"""E-23 — Theorem 23/29: XPath selectors, compilation and typechecking."""

import pytest

from conftest import assert_result
from repro.core import typecheck_forward
from repro.schemas import DTD
from repro.workloads.books import book_dtd, fig3_document, toc_xpath_transducer
from repro.xpath import compile_calls, parse_pattern, pattern_to_dfa, select


def test_pattern_evaluation(benchmark):
    pattern = parse_pattern(".//section[.//section]/title")
    document = fig3_document()
    matches = benchmark(select, pattern, document)
    assert isinstance(matches, list)


@pytest.mark.parametrize("depth", [4, 8, 16])
def test_theorem23_pattern_compilation(benchmark, depth):
    text = "./" + "/".join(["*"] * (depth - 1) + ["title"])
    pattern = parse_pattern(text)
    dfa = benchmark(pattern_to_dfa, pattern, book_dtd().alphabet)
    assert len(dfa.states) <= depth + 3  # linear, Theorem 23


def test_theorem23_call_compilation(benchmark):
    transducer = toc_xpath_transducer()
    compiled = benchmark(compile_calls, transducer)
    assert not compiled.uses_calls()


def test_theorem23_end_to_end_typechecking(benchmark):
    transducer = toc_xpath_transducer()
    din = book_dtd()
    dout = DTD(
        {"book": "title (chapter title+)*"},
        start="book",
        alphabet=din.alphabet,
    )
    result = benchmark(typecheck_forward, transducer, din, dout)
    assert_result(result, True)


def test_theorem29_dfa_selector(benchmark):
    """A selecting DFA instead of a pattern (Theorem 29)."""
    from repro.transducers import TreeTransducer
    from repro.transducers.rhs import RhsCall, RhsSym

    din = book_dtd()
    selector = pattern_to_dfa(parse_pattern(".//title"), din.alphabet)
    transducer = TreeTransducer(
        {"q0", "q"},
        din.alphabet,
        "q0",
        {
            ("q0", "book"): (RhsSym("book", (RhsCall("q", selector),)),),
            ("q", "title"): "title",
        },
    )
    dout = DTD({"book": "title+"}, start="book", alphabet=din.alphabet)
    result = benchmark(typecheck_forward, transducer, din, dout)
    assert_result(result, True)
