"""E-15 / E-16 — Theorem 15 scaling and Proposition 16 analysis cost."""

import pytest

from conftest import assert_result
from repro.core import typecheck_forward
from repro.transducers import TreeTransducer, analyze
from repro.workloads.families import filtering_family, nd_bc_family


@pytest.mark.parametrize("n", [4, 8, 16, 32])
def test_theorem15_filtering_scaling(benchmark, n):
    transducer, din, dout, expected = filtering_family(n)
    result = benchmark(typecheck_forward, transducer, din, dout)
    assert_result(result, expected)


@pytest.mark.parametrize("n", [4, 8, 16])
def test_theorem15_failing_instances(benchmark, n):
    transducer, din, dout, expected = filtering_family(n, typechecks=False)
    result = benchmark(
        typecheck_forward, transducer, din, dout, want_counterexample=False
    )
    assert_result(result, expected)


@pytest.mark.parametrize("n", [8, 16, 32])
def test_theorem15_nd_bc_scaling(benchmark, n):
    transducer, din, dout, expected = nd_bc_family(n)
    result = benchmark(typecheck_forward, transducer, din, dout)
    assert_result(result, expected)


def _wide_transducer(n: int) -> TreeTransducer:
    """n states in a deletion chain with mixed widths (Prop. 16 workload)."""
    states = {f"q{i}" for i in range(n)}
    rules = {}
    rules[("q0", "a")] = "a(q1)"
    for i in range(1, n - 1):
        rules[(f"q{i}", "a")] = f"q{i + 1} a"
    rules[(f"q{n - 1}", "a")] = "a"
    return TreeTransducer(states, {"a"}, "q0", rules)


@pytest.mark.parametrize("n", [16, 64, 256])
def test_prop16_analysis_scaling(benchmark, n):
    transducer = _wide_transducer(n)
    analysis = benchmark(analyze, transducer)
    assert analysis.deletion_path_width == 1
    assert analysis.copying_width == 1
