#!/usr/bin/env python
"""Old-vs-new benchmark for the ``repro.kernel`` interned-state automata
kernel, seeding the repo's perf trajectory.

Times the seed object-state implementations (retained in
:mod:`repro.kernel.reference` and via ``typecheck_forward(use_kernel=False)``)
against the interned kernel on the ``workloads/families.py`` scaling
families plus DFA/NTA micro-workloads, verifies every result, and writes
``BENCH_kernel.json`` at the repo root.

The warm-vs-cold *session* family (compiled ``Session`` batches vs fresh
per-call pipelines, plus the registry-backed one-shot repeat) is measured
alongside and written to ``BENCH_session.json``.

The *backward* family (PR 5) races the inverse-type-inference engine
(``repro.backward``, ``method="backward"``) against the forward engine on
the same workload families plus the wide-copy/small-output family built
for it, asserting verdict parity on both polarities of every row, and
writes ``BENCH_backward.json``; the smoke gate bounds the backward
engine's slowdown on the forward-friendly family and requires it to beat
forward on the wide-copy family.

The *auto* family (PR 6) scores the ``method="auto"`` router: the
calibrated cost comparison resolves forward vs backward per instance and
the routed engine races both explicit engines; ``BENCH_auto.json``
records the predictions and the over-best ratio, and the smoke gate
fails if auto loses more than ~1.2x to the better engine on ``nd_bc`` or
``wide_copy``.

The *service* family (PR 3) measures the multi-process worker pool on the
``nd_bc_batch`` workload — batch throughput with 1/2/4 workers against the
in-process session baseline, the per-transducer table-cache repeat, and a
sharded single query — and writes ``BENCH_service.json``.  Multi-worker
speedups are hardware-bound: the file records ``cpu_count`` and the smoke
gate adapts (on a single-CPU runner it only asserts bounded pool overhead
and correctness; with >= 2 CPUs it requires a real 2-worker speedup).

The *incremental* family (PR 7) races ``Session.retypecheck`` — the
incremental re-check behind the ``repro.updates`` edit-script workloads —
against from-scratch re-checks of the same single-rule edits on the
edit-arm family, asserting verdict parity with a cold session on both
polarities of every edit, and writes ``BENCH_incremental.json``; the
smoke gate requires the incremental path to beat the from-scratch
re-check by a real margin.

The *obs* family (PR 8) prices the ``repro.obs`` telemetry layer on the
``nd_bc`` forward family: ``plain_s`` patches the span seam out entirely
(no instrumentation at all), ``off_s`` runs the shipped disabled path
(null-span check, unmetered kernel drain), and ``on_s`` runs with a live
JSON-lines trace sink plus the metered kernel drain.  The rows land in
``BENCH_obs.json``; the smoke gate bounds ``off_over_plain`` — what
every untelemetered caller pays for the hooks existing — at
:data:`OBS_SMOKE_MAX_OVERHEAD`, while ``on_over_off`` is informational.

``--only FAMILY`` (repeatable, comma-separated) restricts a run to the
named families.  Output files are merged *in place*: only the row groups
that actually re-ran replace their old sections, so a partial run
refreshes stale BENCH_*.json sections without truncating the rest.

Usage::

    python benchmarks/bench_kernel.py            # full run
    python benchmarks/bench_kernel.py --only incremental,session
                                                 # refresh two families,
                                                 # keep other sections
    python benchmarks/bench_kernel.py --smoke    # CI guard: fails (exit 1)
                                                 # if the kernel is slower
                                                 # than the baseline on the
                                                 # smoke family, a warm
                                                 # session fails to beat
                                                 # cold setup, the worker
                                                 # pool misses its
                                                 # (cpu-adaptive) gate, or
                                                 # incremental re-checking
                                                 # fails to beat
                                                 # from-scratch
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.backward import typecheck_backward  # noqa: E402
from repro.core.api import typecheck  # noqa: E402
from repro.core.forward import typecheck_forward  # noqa: E402
from repro.core.session import Session, clear_registry  # noqa: E402
from repro.kernel import reference  # noqa: E402
from repro.schemas.to_nta import dtd_to_nta  # noqa: E402
from repro.strings.dfa import DFA  # noqa: E402
from repro.tree_automata.emptiness import productive_states  # noqa: E402
from repro.workloads.families import (  # noqa: E402
    filtering_family,
    nd_bc_batch,
    nd_bc_family,
    wide_copy_family,
)

SMOKE_FAMILY = ("nd_bc", 16)
# CI guard threshold: the smoke family runs at ~2x locally; requiring only
# ≥ 0.8x keeps the gate meaningful (a real regression drops well below)
# without flaking on noisy shared runners.
SMOKE_MIN_SPEEDUP = 0.8
# Warm sessions must beat cold setup.  Local speedups on the smoke batch are
# ~3x; 1.2x keeps the guard meaningful without flaking on shared runners.
SESSION_SMOKE_FAMILY = (16, 6)
SESSION_SMOKE_MIN_SPEEDUP = 1.2
# Service pool gate: with real CPUs a 2-worker pool must beat 1 worker;
# time-sliced single-CPU runners can only be held to bounded overhead.
SERVICE_SMOKE_MIN_SPEEDUP = 1.15
SERVICE_SMOKE_MIN_RATIO_1CPU = 0.3
# Sticky-pair gate: request bytes are deterministic, so the bound is firm —
# pinning the pair must cut the total request bytes of a 10-item run well
# below v1 framing (locally ~0.2x).
STICKY_SMOKE_MAX_BYTES_RATIO = 0.8
# Backward-engine gates: verdict parity with forward is asserted on every
# row; the timing gates bound the inverse-type-inference engine at a
# generous slowdown on the forward-friendly smoke family (locally ~0.3x,
# i.e. backward actually wins there too) and require it to *beat* the
# forward engine on the wide-copy/small-output family built for it
# (locally ~0.002x).
BACKWARD_SMOKE_MAX_RATIO = 3.0
BACKWARD_WIDE_COPY_MAX_RATIO = 0.5
# Auto-routing gate: the routed engine must land within this factor of the
# faster explicit engine on every gated family — the router may pay a
# (memoized, ~µs) decision, but it must never pick badly enough to lose
# the engine race.
AUTO_SMOKE_MAX_OVER_BEST = 1.2
# Observability gate: the disabled telemetry path (null-span check plus
# the unmetered kernel drain) must cost no more than 5% over a build with
# the span seam patched out entirely — the hooks are supposed to be free
# when nobody turned them on.  Locally the ratio is ~1.0x.
OBS_SMOKE_MAX_OVERHEAD = 1.05
# Incremental re-check gate: after a single-rule edit the retypecheck path
# must beat a from-scratch re-check of the edited transducer on an
# equally schema-warmed session.  Locally the edit-arm family re-checks at
# ~0.3x of from-scratch; 0.8x keeps the gate meaningful without flaking.
INCREMENTAL_SMOKE_MAX_RATIO = 0.8

# ``--only`` choices; each family owns the BENCH_*.json row groups it
# re-runs (forward/dfa/nta share BENCH_kernel.json, service covers every
# service-* group).
FAMILIES = (
    "forward", "dfa", "nta", "backward", "auto", "session", "service",
    "incremental", "obs",
)


def best_of(fn, repeat: int) -> float:
    """Best-of-``repeat`` wall time in seconds (min is robust to noise)."""
    times = []
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def counter_dfa(n: int, symbols: int = 3) -> DFA:
    """A complete n-state counter DFA over ``symbols`` letters."""
    sigma = [f"x{j}" for j in range(symbols)]
    transitions = {
        (i, sigma[j]): (i + j + 1) % n for i in range(n) for j in range(symbols)
    }
    return DFA(range(n), sigma, transitions, 0, {0})


def bench_forward(results, sizes, repeat: int) -> None:
    """typecheck_forward: interned kernel vs the seed object fixpoint."""
    for name, family, n in sizes:
        transducer, din, dout, expected = family(n)
        # Warm the DTD-level caches both engines share, and verify both
        # engines give the right answer before timing anything.
        for use_kernel in (True, False):
            result = typecheck_forward(transducer, din, dout, use_kernel=use_kernel)
            assert result.typechecks == expected, (name, n, use_kernel)
        old = best_of(
            lambda: typecheck_forward(transducer, din, dout, use_kernel=False),
            repeat,
        )
        new = best_of(
            lambda: typecheck_forward(transducer, din, dout, use_kernel=True),
            repeat,
        )
        results.append(
            {
                "group": "forward",
                "name": f"{name}({n})",
                "family": name,
                "n": n,
                "baseline_s": old,
                "kernel_s": new,
                "speedup": old / new,
            }
        )


def bench_backward(results, sizes, repeat: int) -> None:
    """Forward vs backward engine across the workload families.

    Every row checks verdict parity on *both* polarities of the family
    (passing and failing variants) before timing — the backward engine's
    reason to exist is being an independent oracle, so a disagreement is
    a benchmark failure, not a data point.  The parity checks skip
    counterexample materialization so both engines time the bare decision
    procedure (witnesses are shared DAGs now — linear-size even on the
    copying families — but building one is still not the engines' race).
    """
    for name, family, n in sizes:
        transducer, din, dout, expected = family(n)
        for typechecks in (True, False):
            t_v, din_v, dout_v, exp_v = family(n, typechecks)
            forward_v = typecheck_forward(
                t_v, din_v, dout_v, want_counterexample=False
            )
            backward_v = typecheck_backward(
                t_v, din_v, dout_v, want_counterexample=False
            )
            assert forward_v.typechecks == backward_v.typechecks == exp_v, (
                name, n, typechecks,
            )
        forward_s = best_of(
            lambda: typecheck_forward(transducer, din, dout), repeat
        )
        backward_s = best_of(
            lambda: typecheck_backward(transducer, din, dout), repeat
        )
        results.append(
            {
                "group": "backward",
                "name": f"{name}({n})",
                "family": name,
                "n": n,
                "forward_s": forward_s,
                "backward_s": backward_s,
                "backward_over_forward": backward_s / forward_s,
            }
        )


def bench_auto(results, sizes, repeat: int) -> None:
    """The ``method="auto"`` forward/backward router vs both engines.

    For each family the session's calibrated cost comparison (the one
    ``typecheck_sharded(method="auto")`` and the in-trac branch of the
    one-shot facade run) resolves an engine; the row records the
    prediction, the actual wall time of both explicit engines, and the
    routed engine's time.  ``auto_over_best`` is the router's figure of
    merit: 1.0 means it picked the winner, and the smoke gate bounds it
    at :data:`AUTO_SMOKE_MAX_OVER_BEST` on both gated families.  The
    decision itself is memoized per transducer (``routing_cold_s`` is the
    one-time two-key-scan price, ``routing_warm_s`` the steady state).

    Timings race the *raw* engines on purpose: a session's per-transducer
    table cache would serve every repeat in ~40µs and flatter whichever
    path went through it.
    """
    for name, family, n in sizes:
        transducer, din, dout, expected = family(n)
        session = Session(din, dout, eager=False)
        routing_cold = time.perf_counter()
        chosen = session.shard_method(transducer)
        routing_cold_s = time.perf_counter() - routing_cold
        routing_warm_s = best_of(
            lambda: session.shard_method(transducer), repeat
        )
        plain, _analysis = session._compiled_transducer(transducer)
        _choice, costs_ms = session._auto_choice(plain)
        fcost_ms = costs_ms.get("forward", 0.0)
        bcost_ms = costs_ms.get("backward", 0.0)
        forward_r = typecheck_forward(transducer, din, dout)
        backward_r = typecheck_backward(transducer, din, dout)
        assert forward_r.typechecks == backward_r.typechecks == expected, (
            name, n,
        )
        forward_s = best_of(
            lambda: typecheck_forward(transducer, din, dout), repeat
        )
        backward_s = best_of(
            lambda: typecheck_backward(transducer, din, dout), repeat
        )
        auto_s = forward_s if chosen == "forward" else backward_s
        results.append(
            {
                "group": "auto",
                "name": f"{name}({n})",
                "family": name,
                "n": n,
                "chosen": chosen,
                "predicted_forward_ms": fcost_ms,
                "predicted_backward_ms": bcost_ms,
                "routing_cold_s": routing_cold_s,
                "routing_warm_s": routing_warm_s,
                "forward_s": forward_s,
                "backward_s": backward_s,
                "auto_s": auto_s,
                "auto_over_best": auto_s / min(forward_s, backward_s),
            }
        )


def bench_dfa(results, sizes, repeat: int) -> None:
    """DFA product / inclusion / minimize: kernel vs reference objects."""
    for n in sizes:
        left, right = counter_dfa(n), counter_dfa(n + 1)
        cases = {
            "dfa_product": (
                lambda: reference.dfa_product_object(left, right),
                lambda: left.product(right),
            ),
            "dfa_inclusion": (
                lambda: reference.dfa_contains_object(left, right),
                lambda: left.contains(right),
            ),
            "dfa_minimize": (
                lambda: reference.dfa_minimize_object(left.product(right, "either")),
                lambda: left.product(right, "either").minimize(),
            ),
        }
        for case, (old_fn, new_fn) in cases.items():
            assert old_fn() == new_fn(), case  # benchmarks verify correctness
            old = best_of(old_fn, repeat)
            new = best_of(new_fn, repeat)
            results.append(
                {
                    "group": "dfa",
                    "name": f"{case}({n})",
                    "family": case,
                    "n": n,
                    "baseline_s": old,
                    "kernel_s": new,
                    "speedup": old / new,
                }
            )


def bench_nta(results, sizes, repeat: int) -> None:
    """NTA emptiness fixpoint: interned worklist vs whole-δ rescans.

    Chain DTDs of depth ``n``: the seed fixpoint needs ``n`` rounds, each
    rescanning all of δ, while the worklist re-tests only unlocked rules.
    """
    for n in sizes:
        _, din, _, _ = nd_bc_family(n)
        nta = dtd_to_nta(din)
        old_set, _ = reference.productive_states_object(nta)
        new_set, _ = productive_states(nta)
        assert old_set == new_set
        old = best_of(lambda: reference.productive_states_object(nta), repeat)
        new = best_of(lambda: productive_states(nta), repeat)
        results.append(
            {
                "group": "nta",
                "name": f"nta_productive({n})",
                "family": "nta_productive",
                "n": n,
                "baseline_s": old,
                "kernel_s": new,
                "speedup": old / new,
            }
        )


def bench_session(results, sizes, repeat: int) -> None:
    """Warm session batches vs cold per-call pipelines.

    *Cold* rebuilds the schema pair (fresh DTD objects, as a fresh process
    would) and runs the full pipeline for every transducer; *warm* compiles
    one ``Session`` for the pair — session construction included in the
    timed region — and serves the whole batch from it.  The ``one-shot``
    variant times the unchanged ``typecheck()`` facade on fresh DTD objects
    each call: the in-process registry makes repeats warm transparently.
    """
    for n, k in sizes:
        transducers, _, _, expected = nd_bc_batch(n, k)

        def cold():
            for transducer in transducers:
                _, din, dout, _ = nd_bc_family(n)
                result = typecheck_forward(transducer, din, dout)
                assert result.typechecks == expected

        def warm():
            _, din, dout, _ = nd_bc_family(n)
            session = Session(din, dout)
            for result in session.typecheck_many(transducers, method="forward"):
                assert result.typechecks == expected

        def one_shot_registry():
            clear_registry()
            for transducer in transducers:
                _, din, dout, _ = nd_bc_family(n)
                result = typecheck(transducer, din, dout, method="forward")
                assert result.typechecks == expected

        cold_s = best_of(cold, repeat)
        warm_s = best_of(warm, repeat)
        registry_s = best_of(one_shot_registry, repeat)
        results.append(
            {
                "group": "session",
                "name": f"nd_bc_batch(n={n}, k={k})",
                "family": "nd_bc_batch",
                "n": n,
                "k": k,
                "cold_s": cold_s,
                "warm_s": warm_s,
                "one_shot_registry_s": registry_s,
                "per_call_cold_ms": cold_s / k * 1e3,
                "per_call_warm_ms": warm_s / k * 1e3,
                "speedup": cold_s / warm_s,
                "one_shot_registry_speedup": cold_s / registry_s,
            }
        )


def _variant_batch(n: int, k: int, offset: int):
    """``k`` nd_bc transducer variants with globally unique state names.

    Distinct content hashes per repetition defeat the per-transducer table
    cache on *both* sides of the comparison, so throughput rows measure
    honest per-item fixpoint work, not cache hits.
    """
    from repro.transducers.transducer import TreeTransducer

    _, din, dout, expected = nd_bc_family(n)
    alphabet = set(din.alphabet) | {f"t{i}" for i in range(n + 1)}
    transducers = []
    for j in range(offset, offset + k):
        state = f"q{j}"
        rules = {
            (state, f"s{i}"): f"t{i}({state})" if i < n else f"t{n}"
            for i in range(n + 1)
        }
        transducers.append(TreeTransducer({state}, alphabet, state, rules))
    return transducers, din, dout, expected


def bench_service(results, sizes, repeat: int, worker_counts) -> None:
    """Worker-pool throughput on the batch workload, vs in-process.

    Every timed run checks its verdicts; the pool is warmed (every worker
    compiles the pair once, hydrating from a shared artifact-cache dir)
    before timing, so rows measure steady-state serving.  Each repetition
    uses a fresh variant batch (see :func:`_variant_batch`); the identical
    repeat served from the per-transducer table cache is measured
    separately as ``table_cache_speedup``.
    """
    import os
    import tempfile

    from repro.core.session import clear_registry
    from repro.service.pool import WorkerPool

    cpu_count = os.cpu_count() or 1
    for n, k in sizes:
        batches = [_variant_batch(n, k, offset=r * k) for r in range(repeat + 1)]
        _, din, dout, expected = batches[0]

        def time_batches(run) -> float:
            """Best wall time of ``run`` over the distinct timed batches."""
            times = []
            for transducers, _din, _dout, _exp in batches[1:]:
                start = time.perf_counter()
                run(transducers)
                times.append(time.perf_counter() - start)
            return min(times)

        clear_registry()
        session = Session(din, dout)

        def in_process(transducers):
            for result in session.typecheck_many(transducers, method="forward"):
                assert result.typechecks == expected

        in_process(batches[0][0])  # warm the schema artifacts
        base_s = time_batches(in_process)
        # identical repeat: every item now hits the table cache
        repeat_s = best_of(lambda: in_process(batches[1][0]), repeat)

        row = {
            "group": "service",
            "name": f"nd_bc_batch(n={n}, k={k})",
            "family": "nd_bc_batch",
            "n": n,
            "k": k,
            "cpu_count": cpu_count,
            "in_process_s": base_s,
            "table_cache_repeat_s": repeat_s,
            "table_cache_speedup": base_s / repeat_s,
            "workers": {},
        }

        with tempfile.TemporaryDirectory() as cache_dir:
            for workers in worker_counts:
                pool = WorkerPool(workers, cache_dir=cache_dir)
                try:
                    def served(transducers):
                        for result in pool.typecheck_batch(
                            din, dout, transducers, method="forward"
                        ):
                            assert result.typechecks == expected

                    served(batches[0][0])  # warm every worker's session
                    pool_s = time_batches(served)
                    row["workers"][str(workers)] = {
                        "batch_s": pool_s,
                        "throughput_per_s": k / pool_s,
                        "vs_in_process": base_s / pool_s,
                    }
                finally:
                    pool.close()

        one = row["workers"].get("1")
        if one is not None:
            for _workers, data in row["workers"].items():
                data["speedup_vs_1_worker"] = one["batch_s"] / data["batch_s"]
        results.append(row)


def bench_service_sticky(results, n: int, k: int, repeat: int) -> None:
    """Protocol v2 sticky pairs vs v1 framing: request bytes and latency.

    One TCP server, one pair, ``k`` transducers.  The v1 loop ships the
    full instance per request; the sticky loop pins the pair once and
    ships bare transducer payloads.  Each loop runs over the same warmed
    transducers (table-cache hits), so the timing difference is the wire
    and parse overhead the sticky mode exists to remove.
    """
    import asyncio
    import threading

    from repro.service.client import ServiceClient
    from repro.service.pool import WorkerPool
    from repro.service.server import ServiceServer

    class CountingFile:
        def __init__(self, inner):
            self._inner = inner
            self.sent = 0

        def write(self, data):
            self.sent += len(data)
            return self._inner.write(data)

        def __getattr__(self, name):
            return getattr(self._inner, name)

    transducers, din, dout, expected = _variant_batch(n, k, offset=900_000)
    pool = WorkerPool(2)
    service = ServiceServer(pool)
    loop = asyncio.new_event_loop()
    started = threading.Event()

    def run():
        asyncio.set_event_loop(loop)

        async def go():
            await service.start("127.0.0.1", 0)
            started.set()

        loop.run_until_complete(go())
        loop.run_forever()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert started.wait(10)
    try:
        def v1_pass():
            with ServiceClient(port=service.port) as client:
                client._file = CountingFile(client._file)
                for transducer in transducers:
                    result = client.typecheck(
                        transducer, din, dout, method="forward"
                    )
                    assert result["typechecks"] == expected
                return client._file.sent

        def sticky_pass():
            with ServiceClient(port=service.port) as client:
                client._file = CountingFile(client._file)
                handle = client.pair(din, dout)
                for transducer in transducers:
                    result = handle.typecheck(transducer, method="forward")
                    assert result["typechecks"] == expected
                return client._file.sent

        v1_bytes = v1_pass()  # also warms every routed worker
        sticky_bytes = sticky_pass()
        v1_s = best_of(v1_pass, repeat)
        sticky_s = best_of(sticky_pass, repeat)
    finally:
        async def shutdown():
            await service.close()
            pending = [
                task
                for task in asyncio.all_tasks()
                if task is not asyncio.current_task()
            ]
            for task in pending:
                task.cancel()
            await asyncio.gather(*pending, return_exceptions=True)

        asyncio.run_coroutine_threadsafe(shutdown(), loop).result(timeout=10)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=5)
        pool.close()
    results.append(
        {
            "group": "service-sticky",
            "name": f"sticky_vs_v1(n={n}, k={k})",
            "family": "sticky_vs_v1",
            "n": n,
            "k": k,
            "v1_request_bytes": v1_bytes,
            "sticky_request_bytes": sticky_bytes,
            "bytes_ratio": sticky_bytes / v1_bytes,
            "v1_s": v1_s,
            "sticky_s": sticky_s,
            "latency_speedup": v1_s / sticky_s,
        }
    )


def _skewed_shard_instance(width: int, arms: int):
    """An instance whose root-check cells have wildly uneven seed counts.

    Input symbols ``a_i`` map to output nodes carrying 3 copies of the
    state for even ``i`` and 1 copy for odd ``i`` — predicted cell costs
    ``n_out^3`` vs ``n_out^1`` — so a blind round-robin split clusters the
    heavy cells while the LPT planner spreads them.
    """
    from repro.schemas.dtd import DTD
    from repro.transducers.transducer import TreeTransducer

    chain = " ".join(f"c{j}" for j in range(width))
    din_rules = {"root": " ".join(f"a{i}" for i in range(arms)), "b": ""}
    dout_rules = {"root": "t*", "t": chain}
    for i in range(arms):
        din_rules[f"a{i}"] = "b b*"
    for j in range(width):
        dout_rules[f"c{j}"] = ""
    din = DTD(din_rules, start="root")
    dout = DTD(dout_rules, start="root")
    rules = {("q", "root"): "root(" + " ".join("q" for _ in range(1)) + ")"}
    for i in range(arms):
        copies = 3 if i % 2 == 0 else 1
        rules[("q", f"a{i}")] = "t(" + " ".join("q" for _ in range(copies)) + ")"
    rules[("q", "b")] = " ".join(f"c{j}" for j in range(width))
    alphabet = set(din.alphabet) | set(dout.alphabet)
    transducer = TreeTransducer({"q"}, alphabet, "q", rules)
    return transducer, din, dout


def bench_shard_plan(results, width: int, arms: int, repeat: int, shards: int) -> None:
    """Planned (LPT) vs round-robin shard balance on a skewed instance.

    Sequential in-process shard execution (no pool), so the recorded
    per-shard wall times measure *work per shard*, not scheduling noise —
    the spread (max/min) is the planner's figure of merit.
    """
    transducer, din, dout = _skewed_shard_instance(width, arms)

    def spread_of(planner: str):
        best = None
        for _ in range(repeat):
            session = Session(din, dout, eager=False)

            def compute(partitions):
                from repro.core.forward import (
                    compute_forward_tables,
                    ForwardSchema,
                )

                return [
                    compute_forward_tables(
                        transducer, din, dout, partition,
                        schema=ForwardSchema(din, dout),
                    )
                    for partition in partitions
                ]

            result = session.typecheck_sharded(
                transducer, compute, shards=shards, planner=planner
            )
            walls = result.stats["shard_wall_s"]
            row = {
                "wall_s": walls,
                "spread": max(walls) / max(min(walls), 1e-9),
                "costs": result.stats.get("shard_costs"),
            }
            # keep the fastest (least noisy) round, judged by total wall —
            # picking by min spread would flatter the blind partitioner
            if best is None or sum(walls) < sum(best["wall_s"]):
                best = row
        return best

    planned = spread_of("cost")
    rr = spread_of("round-robin")
    results.append(
        {
            "group": "service-shard-plan",
            "name": f"shard_plan(width={width}, arms={arms}, shards={shards})",
            "family": "shard_plan",
            "width": width,
            "arms": arms,
            "shards": shards,
            "planned_wall_s": planned["wall_s"],
            "planned_spread_max_over_min": planned["spread"],
            "planned_costs": planned["costs"],
            "round_robin_wall_s": rr["wall_s"],
            "round_robin_spread_max_over_min": rr["spread"],
        }
    )


def bench_service_shard(results, n: int, repeat: int, shards: int) -> None:
    """A single query with its forward fixpoint sharded across the pool."""
    import os

    from repro.service.pool import WorkerPool

    transducer, din, dout, expected = nd_bc_family(n)
    unsharded = best_of(
        lambda: typecheck_forward(transducer, din, dout), repeat
    )
    pool = WorkerPool(shards)
    try:
        def sharded():
            result = pool.typecheck_sharded(din, dout, transducer, shards=shards)
            assert result.typechecks == expected

        sharded()  # warm worker sessions (and the parent merge session)
        sharded_s = best_of(sharded, repeat)
    finally:
        pool.close()
    results.append(
        {
            "group": "service-shard",
            "name": f"nd_bc({n}) sharded x{shards}",
            "family": "nd_bc_shard",
            "n": n,
            "shards": shards,
            "cpu_count": os.cpu_count() or 1,
            "unsharded_s": unsharded,
            "sharded_s": sharded_s,
            "speedup": unsharded / sharded_s,
        }
    )


def bench_incremental(results, sizes, repeat: int) -> None:
    """``Session.retypecheck`` vs from-scratch on single-rule edits.

    The edit-arm family isolates one arm per edit: the incremental path
    diffs the edited rule set against the base, keeps every fixpoint cell
    independent of the touched arm, and recomputes only the rest.  Before
    any timing, every edit (both polarities) is re-checked incrementally
    *and* by a cold session, and the verdicts must agree — an incremental
    path that drifts from from-scratch is a correctness failure, not a
    data point.

    Each timing repetition re-checks a *distinct* edited transducer
    (fresh content hash, different arm) so neither side is served by the
    per-transducer table cache.  ``scratch_s`` is the honest baseline: a
    full re-check on an equally schema-warmed session; ``cold_s`` also
    pays fresh session construction.  ``method="forward"`` is pinned —
    auto routes this family to the backward engine, and the gate scores
    the forward incremental path specifically.
    """
    from repro.workloads.updates import edit_arm_pair, edit_arm_transducer

    for arms in sizes:
        din, dout = edit_arm_pair(arms)
        base = edit_arm_transducer(arms)

        parity = Session(din, dout)
        assert parity.typecheck(base, method="forward").typechecks
        modes = set()
        for i in range(arms):
            for variant, expected in (("safe", True), ("unsafe", False)):
                edited = edit_arm_transducer(arms, edited=i, variant=variant)
                inc = parity.retypecheck(edited, base, method="forward")
                cold = Session(din, dout).typecheck(edited, method="forward")
                assert inc.typechecks == cold.typechecks == expected, (
                    arms, i, variant,
                )
                modes.add(inc.stats["retypecheck_mode"])
        assert "incremental" in modes, modes

        # Fresh sessions for timing: ``parity`` has every edit's tables
        # cached, which would turn the timed re-checks into cache hits.
        warm = Session(din, dout)
        assert warm.typecheck(base, method="forward").typechecks
        scratch = Session(din, dout)
        assert scratch.typecheck(base, method="forward").typechecks
        variants = [
            edit_arm_transducer(arms, edited=i % arms, variant="safe")
            for i in range(min(repeat, arms))
        ]

        def timed(run) -> float:
            times = []
            for edited in variants:
                start = time.perf_counter()
                run(edited)
                times.append(time.perf_counter() - start)
            return min(times)

        incremental_s = timed(
            lambda e: warm.retypecheck(e, base, method="forward")
        )
        scratch_s = timed(lambda e: scratch.typecheck(e, method="forward"))
        cold_s = timed(
            lambda e: Session(din, dout).typecheck(e, method="forward")
        )
        detail = warm.retypecheck(
            edit_arm_transducer(arms, edited=0, variant="unsafe"), base,
            method="forward",
        ).stats.get("retypecheck", {})
        results.append(
            {
                "group": "incremental",
                "name": f"edit_arm({arms})",
                "family": "edit_arm",
                "n": arms,
                "incremental_s": incremental_s,
                "scratch_s": scratch_s,
                "cold_s": cold_s,
                "incremental_over_scratch": incremental_s / scratch_s,
                "incremental_over_cold": incremental_s / cold_s,
                "modes": sorted(modes),
                "reuse": {
                    key: detail.get(key)
                    for key in (
                        "changed_states", "dirty_states", "reused_hedge",
                        "reachable_hedge", "reused_tree", "reachable_tree",
                    )
                },
            }
        )


def bench_obs(results, sizes, repeat: int) -> None:
    """Telemetry overhead on the forward engine: patched-out vs off vs on.

    ``plain_s`` monkeypatches ``repro.obs.trace.span`` to a constant
    null-span factory, removing even the shipped disabled-path check —
    the closest honest stand-in for a build with no hooks at all.
    ``off_s`` is the real disabled path every untelemetered caller runs
    (null-span lookup, unmetered kernel drain, counter increments);
    the smoke gate holds ``off_s / plain_s`` to
    :data:`OBS_SMOKE_MAX_OVERHEAD`.  ``on_s`` enables the JSON-lines
    trace sink and the metered kernel drain; its ratio over ``off_s`` is
    recorded but not gated — turning telemetry on is allowed to cost.

    Bare ``typecheck_forward`` calls are timed on purpose: each builds a
    private schema, so no table cache flattens the engine work the
    instrumentation is amortised against.  The three variants are
    interleaved round-robin within every repetition — phase-sequential
    timing lets host-load drift masquerade as a telemetry cost (or
    credit) several times larger than the real sub-1% delta.
    """
    import contextlib
    import tempfile

    from repro.obs import metrics as obs_metrics
    from repro.obs import trace as obs_trace

    null_span = obs_trace._NULL_SPAN
    real_span = obs_trace.span

    @contextlib.contextmanager
    def patched_out():
        obs_trace.span = lambda *args, **attrs: null_span
        try:
            yield
        finally:
            obs_trace.span = real_span

    @contextlib.contextmanager
    def disabled():
        assert not obs_trace.enabled()
        assert not obs_metrics.kernel_metrics_enabled()
        yield

    @contextlib.contextmanager
    def enabled(sink_path):
        obs_trace.trace_to(sink_path)
        obs_metrics.enable_kernel_metrics()
        try:
            yield
        finally:
            obs_metrics.disable_kernel_metrics()
            obs_trace.trace_to(None)
            obs_trace._LOCAL.trace_id = None
            obs_trace._LOCAL.span_id = None

    for name, family, n in sizes:
        transducer, din, dout, expected = family(n)
        result = typecheck_forward(transducer, din, dout)
        assert result.typechecks == expected, (name, n)

        def run():
            typecheck_forward(transducer, din, dout)

        times = {"plain": [], "off": [], "on": []}
        with tempfile.TemporaryDirectory() as sink_dir:
            sink_path = str(Path(sink_dir) / "bench_trace.jsonl")
            variants = (
                ("plain", patched_out),
                ("off", disabled),
                ("on", lambda: enabled(sink_path)),
            )
            for _ in range(repeat):
                for variant, seam in variants:
                    with seam():
                        start = time.perf_counter()
                        run()
                        times[variant].append(time.perf_counter() - start)
        plain_s = min(times["plain"])
        off_s = min(times["off"])
        on_s = min(times["on"])

        results.append(
            {
                "group": "obs",
                "name": f"{name}({n})",
                "family": name,
                "n": n,
                "plain_s": plain_s,
                "off_s": off_s,
                "on_s": on_s,
                "off_over_plain": off_s / plain_s,
                "on_over_off": on_s / off_s,
            }
        )

    # The explain seam (PR 10): ``Session.typecheck(explain=False)`` must
    # cost no more than calling the unwrapped check directly.  ``plain``
    # bypasses the wrapper (lock + inner ``_typecheck``, exactly what the
    # wrapper runs when explain is off); ``off`` is the shipped default
    # path; ``on`` builds the full QueryReport (delta-scoped kernel
    # counters, predicted costs) and is informational.  Warm sessions are
    # timed on purpose — table-cache hits are the fastest queries, so the
    # per-call wrapper overhead is largest relative to them.
    for name, family, n in sizes:
        transducer, din, dout, expected = family(n)
        session = Session(din, dout, eager=False)
        assert session.typecheck(transducer).typechecks == expected, (name, n)

        def plain_run():
            with session._lock:
                session._typecheck(transducer, "auto", None)

        variants = (
            ("plain", plain_run),
            ("off", lambda: session.typecheck(transducer)),
            ("on", lambda: session.typecheck(transducer, explain=True)),
        )
        times = {"plain": [], "off": [], "on": []}
        for _ in range(repeat):
            for variant, run in variants:
                start = time.perf_counter()
                run()
                times[variant].append(time.perf_counter() - start)
        plain_s = min(times["plain"])
        off_s = min(times["off"])
        on_s = min(times["on"])

        results.append(
            {
                "group": "obs",
                "name": f"{name}_explain({n})",
                "family": name,
                "n": n,
                "plain_s": plain_s,
                "off_s": off_s,
                "on_s": on_s,
                "off_over_plain": off_s / plain_s,
                "on_over_off": on_s / off_s,
            }
        )


def _merge_bench(path: Path, new_rows, mode: str, repeat: int, summarize) -> None:
    """Write ``path``, replacing only the row groups that re-ran.

    Groups present in ``new_rows`` overwrite their old sections; rows of
    groups a ``--only`` run skipped survive from the existing file, so a
    partial run refreshes stale sections in place instead of truncating
    the file to whatever it happened to run.  Summary fields are
    recomputed over the *merged* rows, keeping them consistent with the
    file's contents rather than the last run's subset.
    """
    existing = []
    if path.exists():
        try:
            existing = json.loads(path.read_text()).get("benchmarks", [])
        except (json.JSONDecodeError, OSError):
            existing = []
    ran_groups = {row["group"] for row in new_rows}
    merged = [row for row in existing if row.get("group") not in ran_groups]
    merged += new_rows
    summary = {"mode": mode, "repeat": repeat}
    summary.update(summarize(merged))
    summary["benchmarks"] = merged
    path.write_text(json.dumps(summary, indent=2) + "\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small sizes; exit 1 if the kernel is slower "
                             "than the baseline on the smoke family, a "
                             "warm session fails to beat cold setup, or "
                             "incremental re-checking fails to beat "
                             "from-scratch")
    parser.add_argument("--only", action="append", metavar="FAMILY",
                        help="run only these bench families (repeatable or "
                             f"comma-separated; choices: {', '.join(FAMILIES)}"
                             "); BENCH_*.json sections owned by families "
                             "not selected are preserved in place")
    parser.add_argument("--repeat", type=int, default=None,
                        help="timing repetitions (default: 5, smoke: 7)")
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_kernel.json")
    parser.add_argument("--output-session", type=Path,
                        default=REPO_ROOT / "BENCH_session.json")
    parser.add_argument("--output-service", type=Path,
                        default=REPO_ROOT / "BENCH_service.json")
    parser.add_argument("--output-backward", type=Path,
                        default=REPO_ROOT / "BENCH_backward.json")
    parser.add_argument("--output-auto", type=Path,
                        default=REPO_ROOT / "BENCH_auto.json")
    parser.add_argument("--output-incremental", type=Path,
                        default=REPO_ROOT / "BENCH_incremental.json")
    parser.add_argument("--output-obs", type=Path,
                        default=REPO_ROOT / "BENCH_obs.json")
    args = parser.parse_args(argv)
    repeat = args.repeat or (7 if args.smoke else 5)
    only = set()
    for spec in args.only or ():
        only.update(part.strip() for part in spec.split(",") if part.strip())
    unknown = only - set(FAMILIES)
    if unknown:
        parser.error(
            f"unknown --only families: {', '.join(sorted(unknown))} "
            f"(choices: {', '.join(FAMILIES)})"
        )

    def want(family: str) -> bool:
        return not only or family in only

    results: list = []
    session_results: list = []
    service_results: list = []
    backward_results: list = []
    auto_results: list = []
    incremental_results: list = []
    obs_results: list = []
    if args.smoke:
        if want("forward"):
            bench_forward(
                results, [("nd_bc", nd_bc_family, SMOKE_FAMILY[1])], repeat
            )
        if want("backward"):
            bench_backward(
                backward_results,
                [("nd_bc", nd_bc_family, SMOKE_FAMILY[1]),
                 ("wide_copy", wide_copy_family, 8)],
                repeat,
            )
        if want("auto"):
            bench_auto(
                auto_results,
                [("nd_bc", nd_bc_family, SMOKE_FAMILY[1]),
                 ("wide_copy", wide_copy_family, 8)],
                repeat,
            )
        if want("dfa"):
            bench_dfa(results, [16], repeat)
        if want("nta"):
            bench_nta(results, [32], repeat)
        if want("session"):
            bench_session(session_results, [SESSION_SMOKE_FAMILY], repeat)
        if want("service"):
            bench_service(
                service_results, [(16, 12)], min(repeat, 3),
                worker_counts=(1, 2),
            )
            bench_service_sticky(service_results, 12, 10, min(repeat, 3))
            bench_shard_plan(
                service_results, width=16, arms=8, repeat=2, shards=2
            )
        if want("incremental"):
            bench_incremental(incremental_results, [8], repeat)
        if want("obs"):
            bench_obs(
                obs_results, [("nd_bc", nd_bc_family, SMOKE_FAMILY[1])], repeat
            )
    else:
        if want("forward"):
            bench_forward(
                results,
                [
                    ("nd_bc", nd_bc_family, 16),
                    ("nd_bc", nd_bc_family, 32),
                    ("nd_bc", nd_bc_family, 64),
                    ("filtering", filtering_family, 32),
                    ("filtering", filtering_family, 48),
                ],
                repeat,
            )
        if want("backward"):
            bench_backward(
                backward_results,
                [
                    ("nd_bc", nd_bc_family, 16),
                    ("nd_bc", nd_bc_family, 64),
                    ("filtering", filtering_family, 32),
                    ("wide_copy", wide_copy_family, 8),
                    ("wide_copy", wide_copy_family, 16),
                ],
                repeat,
            )
        if want("auto"):
            bench_auto(
                auto_results,
                [
                    ("nd_bc", nd_bc_family, 16),
                    ("nd_bc", nd_bc_family, 64),
                    ("filtering", filtering_family, 32),
                    ("wide_copy", wide_copy_family, 8),
                    ("wide_copy", wide_copy_family, 16),
                ],
                repeat,
            )
        if want("dfa"):
            bench_dfa(results, [16, 48, 96], repeat)
        if want("nta"):
            bench_nta(results, [32, 96, 256], repeat)
        if want("session"):
            bench_session(
                session_results, [(16, 6), (32, 12), (64, 8)], repeat
            )
        if want("service"):
            bench_service(
                service_results, [(24, 24), (48, 16)], min(repeat, 3),
                worker_counts=(1, 2, 4),
            )
            bench_service_shard(service_results, 48, min(repeat, 3), shards=4)
            bench_service_sticky(service_results, 24, 24, min(repeat, 3))
            bench_shard_plan(
                service_results, width=16, arms=8, repeat=3, shards=2
            )
            bench_shard_plan(
                service_results, width=16, arms=8, repeat=3, shards=4
            )
        if want("incremental"):
            bench_incremental(incremental_results, [8, 16], repeat)
        if want("obs"):
            bench_obs(
                obs_results,
                [("nd_bc", nd_bc_family, 16), ("nd_bc", nd_bc_family, 32)],
                repeat,
            )

    import os as _os

    mode = "smoke" if args.smoke else "full"
    cpu_count = _os.cpu_count() or 1
    written = []

    def kernel_summary(rows):
        forward = [r for r in rows if r["group"] == "forward"]
        if not forward:
            return {}
        largest = max(forward, key=lambda r: (r["n"], r["baseline_s"]))
        return {
            "largest_forward": largest["name"],
            "largest_forward_speedup": largest["speedup"],
        }

    def session_summary(rows):
        largest = max(rows, key=lambda r: (r["n"], r["cold_s"]))
        return {
            "largest_batch": largest["name"],
            "largest_batch_warm_speedup": largest["speedup"],
        }

    def service_summary(rows):
        best_scaling = None
        for row in rows:
            if row["group"] != "service":
                continue
            for workers, data in row["workers"].items():
                if workers == "1":
                    continue
                candidate = (
                    data.get("speedup_vs_1_worker", 0.0), workers, row["name"]
                )
                if best_scaling is None or candidate > best_scaling:
                    best_scaling = candidate
        return {
            "cpu_count": cpu_count,
            "note": (
                "multi-worker speedups are bounded by cpu_count: on a "
                "single-CPU host the workers time-slice one core and the "
                "pool can only match (not beat) one worker"
            ),
            "best_multi_worker_speedup": (
                None if best_scaling is None else {
                    "speedup_vs_1_worker": best_scaling[0],
                    "workers": int(best_scaling[1]),
                    "family": best_scaling[2],
                }
            ),
        }

    def backward_summary(rows):
        best = min(rows, key=lambda r: r["backward_over_forward"])
        return {
            "note": (
                "backward_over_forward < 1 means the inverse-type-inference "
                "engine beats the Lemma 14 forward engine on the family; "
                "verdicts are asserted identical on every row (both "
                "polarities) before timing"
            ),
            "best_family": best["name"],
            "best_backward_over_forward": best["backward_over_forward"],
        }

    def auto_summary(rows):
        worst = max(rows, key=lambda r: r["auto_over_best"])
        return {
            "note": (
                "auto_over_best is the routed engine's wall time over the "
                "faster explicit engine's: 1.0 means the calibrated cost "
                "comparison picked the winner; the smoke gate bounds it at "
                f"{AUTO_SMOKE_MAX_OVER_BEST}x on nd_bc and wide_copy.  The "
                "routing decision itself is memoized per transducer "
                "(routing_warm_s is the steady-state price)"
            ),
            "worst_family": worst["name"],
            "worst_auto_over_best": worst["auto_over_best"],
        }

    def incremental_summary(rows):
        worst = max(rows, key=lambda r: r["incremental_over_scratch"])
        return {
            "note": (
                "incremental_over_scratch is Session.retypecheck's wall "
                "time over a from-scratch re-check of the same single-rule "
                "edit on an equally schema-warmed session "
                "(incremental_over_cold races a fresh session instead); "
                "verdict parity with a cold session is asserted on both "
                "polarities of every edit before timing; the smoke gate "
                f"bounds the worst ratio at {INCREMENTAL_SMOKE_MAX_RATIO}x"
            ),
            "worst_family": worst["name"],
            "worst_incremental_over_scratch": worst["incremental_over_scratch"],
        }

    def obs_summary(rows):
        worst = max(rows, key=lambda r: r["off_over_plain"])
        return {
            "note": (
                "off_over_plain is the shipped disabled telemetry path "
                "(null spans, unmetered kernel drain) over a run with the "
                "span seam patched out entirely — the price of the hooks "
                "existing, which the smoke gate bounds at "
                f"{OBS_SMOKE_MAX_OVERHEAD}x; on_over_off is what enabling "
                "the trace sink and metered kernel drain actually costs "
                "and is informational; *_explain rows price the "
                "Session.typecheck explain seam the same way (off = "
                "explain=False default path, on = full QueryReport)"
            ),
            "worst_family": worst["name"],
            "worst_off_over_plain": worst["off_over_plain"],
        }

    for path, rows, file_repeat, summarize in (
        (args.output, results, repeat, kernel_summary),
        (args.output_session, session_results, repeat, session_summary),
        (args.output_service, service_results, min(repeat, 3),
         service_summary),
        (args.output_backward, backward_results, repeat, backward_summary),
        (args.output_auto, auto_results, repeat, auto_summary),
        (args.output_incremental, incremental_results, repeat,
         incremental_summary),
        (args.output_obs, obs_results, repeat, obs_summary),
    ):
        if rows:
            _merge_bench(path, rows, mode, file_repeat, summarize)
            written.append(path)

    service_batches = [r for r in service_results if r["group"] == "service"]
    all_rows = (
        results + session_results + service_results + backward_results
        + auto_results + incremental_results + obs_results
    )
    width = max((len(r["name"]) for r in all_rows), default=0)
    for r in results:
        print(
            f"{r['name']:<{width}}  baseline {r['baseline_s'] * 1e3:8.2f} ms"
            f"  kernel {r['kernel_s'] * 1e3:8.2f} ms"
            f"  speedup {r['speedup']:6.2f}x"
        )
    for r in backward_results:
        print(
            f"{r['name']:<{width}}  forward  {r['forward_s'] * 1e3:8.2f} ms"
            f"  bwd    {r['backward_s'] * 1e3:8.2f} ms"
            f"  b/f    {r['backward_over_forward']:6.2f}x"
        )
    for r in auto_results:
        print(
            f"{r['name']:<{width}}  auto={r['chosen']:<8s}"
            f"  routed {r['auto_s'] * 1e3:8.2f} ms"
            f"  best {min(r['forward_s'], r['backward_s']) * 1e3:8.2f} ms"
            f"  over-best {r['auto_over_best']:5.2f}x"
        )
    for r in session_results:
        print(
            f"{r['name']:<{width}}  cold     {r['cold_s'] * 1e3:8.2f} ms"
            f"  warm   {r['warm_s'] * 1e3:8.2f} ms"
            f"  speedup {r['speedup']:6.2f}x"
            f"  (one-shot registry {r['one_shot_registry_speedup']:.2f}x)"
        )
    for r in service_batches:
        scaling = "  ".join(
            f"{workers}w {data['batch_s'] * 1e3:8.2f} ms"
            f" ({data.get('speedup_vs_1_worker', 1.0):.2f}x)"
            for workers, data in sorted(r["workers"].items(), key=lambda kv: int(kv[0]))
        )
        print(
            f"{r['name']:<{width}}  in-proc  {r['in_process_s'] * 1e3:8.2f} ms"
            f"  pool: {scaling}"
            f"  table-cache repeat {r['table_cache_speedup']:.1f}x"
        )
    for r in service_results:
        if r["group"] != "service-shard":
            continue
        print(
            f"{r['name']:<{width}}  unsharded {r['unsharded_s'] * 1e3:7.2f} ms"
            f"  sharded {r['sharded_s'] * 1e3:8.2f} ms"
            f"  speedup {r['speedup']:6.2f}x"
        )
    for r in service_results:
        if r["group"] == "service-sticky":
            print(
                f"{r['name']:<{width}}  v1 {r['v1_request_bytes']:>9} B"
                f"  sticky {r['sticky_request_bytes']:>9} B"
                f"  ({r['bytes_ratio']:.2f}x bytes,"
                f" {r['latency_speedup']:.2f}x latency)"
            )
        elif r["group"] == "service-shard-plan":
            print(
                f"{r['name']:<{width}}"
                f"  planned spread {r['planned_spread_max_over_min']:6.2f}"
                f"  round-robin spread"
                f" {r['round_robin_spread_max_over_min']:6.2f}"
            )
    for r in incremental_results:
        print(
            f"{r['name']:<{width}}  scratch  {r['scratch_s'] * 1e3:8.2f} ms"
            f"  incr   {r['incremental_s'] * 1e3:8.2f} ms"
            f"  ratio  {r['incremental_over_scratch']:6.2f}x"
            f"  (vs cold {r['incremental_over_cold']:.2f}x)"
        )
    for r in obs_results:
        print(
            f"{r['name']:<{width}}  plain    {r['plain_s'] * 1e3:8.2f} ms"
            f"  off    {r['off_s'] * 1e3:8.2f} ms"
            f"  off/plain {r['off_over_plain']:5.2f}x"
            f"  (on/off {r['on_over_off']:.2f}x)"
        )
    print()
    for path in written:
        print(f"wrote {path}")

    if args.smoke:
        failed = False
        forward = [r for r in results if r["group"] == "forward"]
        smoke = next(
            (r for r in forward if r["n"] == SMOKE_FAMILY[1]), None
        )
        if smoke is not None and smoke["speedup"] < SMOKE_MIN_SPEEDUP:
            print(
                f"SMOKE FAILURE: interned kernel slower than the object-state "
                f"baseline on {smoke['name']} "
                f"({smoke['kernel_s'] * 1e3:.2f} ms vs "
                f"{smoke['baseline_s'] * 1e3:.2f} ms; speedup "
                f"{smoke['speedup']:.2f}x < {SMOKE_MIN_SPEEDUP}x)",
                file=sys.stderr,
            )
            failed = True
        session_smoke = session_results[0] if session_results else None
        if (
            session_smoke is not None
            and session_smoke["speedup"] < SESSION_SMOKE_MIN_SPEEDUP
        ):
            print(
                f"SMOKE FAILURE: warm session does not beat cold setup on "
                f"{session_smoke['name']} "
                f"({session_smoke['warm_s'] * 1e3:.2f} ms vs "
                f"{session_smoke['cold_s'] * 1e3:.2f} ms; speedup "
                f"{session_smoke['speedup']:.2f}x < "
                f"{SESSION_SMOKE_MIN_SPEEDUP}x)",
                file=sys.stderr,
            )
            failed = True
        service_smoke = service_batches[0] if service_batches else None
        two = (
            None if service_smoke is None
            else service_smoke["workers"]["2"]["speedup_vs_1_worker"]
        )
        if two is None:
            pass
        elif cpu_count >= 2:
            # Real cores available: a 2-worker pool must actually scale.
            if two < SERVICE_SMOKE_MIN_SPEEDUP:
                print(
                    f"SMOKE FAILURE: 2-worker pool does not beat 1 worker on "
                    f"{service_smoke['name']} ({two:.2f}x < "
                    f"{SERVICE_SMOKE_MIN_SPEEDUP}x with {cpu_count} CPUs)",
                    file=sys.stderr,
                )
                failed = True
        elif two < SERVICE_SMOKE_MIN_RATIO_1CPU:
            # One time-sliced CPU cannot scale; only bound the overhead.
            print(
                f"SMOKE FAILURE: 2-worker pool overhead out of bounds on "
                f"{service_smoke['name']} ({two:.2f}x < "
                f"{SERVICE_SMOKE_MIN_RATIO_1CPU}x on a single CPU)",
                file=sys.stderr,
            )
            failed = True
        if (
            service_smoke is not None
            and service_smoke["table_cache_speedup"] < 1.0
        ):
            print(
                "SMOKE FAILURE: identical-repeat table-cache serving is "
                f"slower than recomputing "
                f"({service_smoke['table_cache_speedup']:.2f}x < 1x)",
                file=sys.stderr,
            )
            failed = True
        backward_smoke = next(
            (r for r in backward_results
             if r["family"] == "nd_bc" and r["n"] == SMOKE_FAMILY[1]),
            None,
        )
        if (
            backward_smoke is not None
            and backward_smoke["backward_over_forward"]
            > BACKWARD_SMOKE_MAX_RATIO
        ):
            print(
                f"SMOKE FAILURE: backward engine too slow on "
                f"{backward_smoke['name']} "
                f"({backward_smoke['backward_s'] * 1e3:.2f} ms vs forward "
                f"{backward_smoke['forward_s'] * 1e3:.2f} ms; ratio "
                f"{backward_smoke['backward_over_forward']:.2f}x > "
                f"{BACKWARD_SMOKE_MAX_RATIO}x)",
                file=sys.stderr,
            )
            failed = True
        for row in auto_results:
            if row["auto_over_best"] > AUTO_SMOKE_MAX_OVER_BEST:
                print(
                    f"SMOKE FAILURE: auto routed {row['name']} to "
                    f"{row['chosen']} at {row['auto_s'] * 1e3:.2f} ms vs the "
                    f"better engine's "
                    f"{min(row['forward_s'], row['backward_s']) * 1e3:.2f} ms "
                    f"({row['auto_over_best']:.2f}x > "
                    f"{AUTO_SMOKE_MAX_OVER_BEST}x)",
                    file=sys.stderr,
                )
                failed = True
        wide_copy = next(
            (r for r in backward_results if r["family"] == "wide_copy"),
            None,
        )
        if (
            wide_copy is not None
            and wide_copy["backward_over_forward"]
            > BACKWARD_WIDE_COPY_MAX_RATIO
        ):
            print(
                f"SMOKE FAILURE: backward engine does not beat forward on "
                f"its own family {wide_copy['name']} "
                f"({wide_copy['backward_over_forward']:.3f}x > "
                f"{BACKWARD_WIDE_COPY_MAX_RATIO}x)",
                file=sys.stderr,
            )
            failed = True
        sticky = next(
            (r for r in service_results if r["group"] == "service-sticky"),
            None,
        )
        if (
            sticky is not None
            and sticky["bytes_ratio"] >= STICKY_SMOKE_MAX_BYTES_RATIO
        ):
            # Byte accounting is deterministic: sticky mode must actually
            # stop re-shipping schema text.
            print(
                f"SMOKE FAILURE: sticky mode does not shrink request bytes "
                f"on {sticky['name']} ({sticky['bytes_ratio']:.2f}x >= "
                f"{STICKY_SMOKE_MAX_BYTES_RATIO}x of v1)",
                file=sys.stderr,
            )
            failed = True
        for row in obs_results:
            if row["off_over_plain"] > OBS_SMOKE_MAX_OVERHEAD:
                print(
                    f"SMOKE FAILURE: disabled telemetry path is not free on "
                    f"{row['name']} ({row['off_s'] * 1e3:.2f} ms vs "
                    f"{row['plain_s'] * 1e3:.2f} ms with the span seam "
                    f"patched out; ratio {row['off_over_plain']:.3f}x > "
                    f"{OBS_SMOKE_MAX_OVERHEAD}x)",
                    file=sys.stderr,
                )
                failed = True
        for row in incremental_results:
            if row["incremental_over_scratch"] > INCREMENTAL_SMOKE_MAX_RATIO:
                print(
                    f"SMOKE FAILURE: incremental re-check does not beat "
                    f"from-scratch on {row['name']} "
                    f"({row['incremental_s'] * 1e3:.2f} ms vs "
                    f"{row['scratch_s'] * 1e3:.2f} ms; ratio "
                    f"{row['incremental_over_scratch']:.2f}x > "
                    f"{INCREMENTAL_SMOKE_MAX_RATIO}x)",
                    file=sys.stderr,
                )
                failed = True
        if failed:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
