#!/usr/bin/env python
"""Old-vs-new benchmark for the ``repro.kernel`` interned-state automata
kernel, seeding the repo's perf trajectory.

Times the seed object-state implementations (retained in
:mod:`repro.kernel.reference` and via ``typecheck_forward(use_kernel=False)``)
against the interned kernel on the ``workloads/families.py`` scaling
families plus DFA/NTA micro-workloads, verifies every result, and writes
``BENCH_kernel.json`` at the repo root.

Usage::

    python benchmarks/bench_kernel.py            # full run
    python benchmarks/bench_kernel.py --smoke    # CI guard: fails (exit 1)
                                                 # if the kernel is slower
                                                 # than the baseline on the
                                                 # smoke family
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.forward import typecheck_forward  # noqa: E402
from repro.kernel import reference  # noqa: E402
from repro.schemas.to_nta import dtd_to_nta  # noqa: E402
from repro.strings.dfa import DFA  # noqa: E402
from repro.tree_automata.emptiness import productive_states  # noqa: E402
from repro.workloads.families import filtering_family, nd_bc_family  # noqa: E402

SMOKE_FAMILY = ("nd_bc", 16)
# CI guard threshold: the smoke family runs at ~2x locally; requiring only
# ≥ 0.8x keeps the gate meaningful (a real regression drops well below)
# without flaking on noisy shared runners.
SMOKE_MIN_SPEEDUP = 0.8


def best_of(fn, repeat: int) -> float:
    """Best-of-``repeat`` wall time in seconds (min is robust to noise)."""
    times = []
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def counter_dfa(n: int, symbols: int = 3) -> DFA:
    """A complete n-state counter DFA over ``symbols`` letters."""
    sigma = [f"x{j}" for j in range(symbols)]
    transitions = {
        (i, sigma[j]): (i + j + 1) % n for i in range(n) for j in range(symbols)
    }
    return DFA(range(n), sigma, transitions, 0, {0})


def bench_forward(results, sizes, repeat: int) -> None:
    """typecheck_forward: interned kernel vs the seed object fixpoint."""
    for name, family, n in sizes:
        transducer, din, dout, expected = family(n)
        # Warm the DTD-level caches both engines share, and verify both
        # engines give the right answer before timing anything.
        for use_kernel in (True, False):
            result = typecheck_forward(transducer, din, dout, use_kernel=use_kernel)
            assert result.typechecks == expected, (name, n, use_kernel)
        old = best_of(
            lambda: typecheck_forward(transducer, din, dout, use_kernel=False),
            repeat,
        )
        new = best_of(
            lambda: typecheck_forward(transducer, din, dout, use_kernel=True),
            repeat,
        )
        results.append(
            {
                "group": "forward",
                "name": f"{name}({n})",
                "family": name,
                "n": n,
                "baseline_s": old,
                "kernel_s": new,
                "speedup": old / new,
            }
        )


def bench_dfa(results, sizes, repeat: int) -> None:
    """DFA product / inclusion / minimize: kernel vs reference objects."""
    for n in sizes:
        left, right = counter_dfa(n), counter_dfa(n + 1)
        cases = {
            "dfa_product": (
                lambda: reference.dfa_product_object(left, right),
                lambda: left.product(right),
            ),
            "dfa_inclusion": (
                lambda: reference.dfa_contains_object(left, right),
                lambda: left.contains(right),
            ),
            "dfa_minimize": (
                lambda: reference.dfa_minimize_object(left.product(right, "either")),
                lambda: left.product(right, "either").minimize(),
            ),
        }
        for case, (old_fn, new_fn) in cases.items():
            assert old_fn() == new_fn(), case  # benchmarks verify correctness
            old = best_of(old_fn, repeat)
            new = best_of(new_fn, repeat)
            results.append(
                {
                    "group": "dfa",
                    "name": f"{case}({n})",
                    "family": case,
                    "n": n,
                    "baseline_s": old,
                    "kernel_s": new,
                    "speedup": old / new,
                }
            )


def bench_nta(results, sizes, repeat: int) -> None:
    """NTA emptiness fixpoint: interned worklist vs whole-δ rescans.

    Chain DTDs of depth ``n``: the seed fixpoint needs ``n`` rounds, each
    rescanning all of δ, while the worklist re-tests only unlocked rules.
    """
    for n in sizes:
        _, din, _, _ = nd_bc_family(n)
        nta = dtd_to_nta(din)
        old_set, _ = reference.productive_states_object(nta)
        new_set, _ = productive_states(nta)
        assert old_set == new_set
        old = best_of(lambda: reference.productive_states_object(nta), repeat)
        new = best_of(lambda: productive_states(nta), repeat)
        results.append(
            {
                "group": "nta",
                "name": f"nta_productive({n})",
                "family": "nta_productive",
                "n": n,
                "baseline_s": old,
                "kernel_s": new,
                "speedup": old / new,
            }
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small sizes; exit 1 if the kernel is slower "
                             "than the baseline on the smoke family")
    parser.add_argument("--repeat", type=int, default=None,
                        help="timing repetitions (default: 5, smoke: 7)")
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_kernel.json")
    args = parser.parse_args(argv)
    repeat = args.repeat or (7 if args.smoke else 5)

    results: list = []
    if args.smoke:
        bench_forward(results, [("nd_bc", nd_bc_family, SMOKE_FAMILY[1])], repeat)
        bench_dfa(results, [16], repeat)
        bench_nta(results, [32], repeat)
    else:
        bench_forward(
            results,
            [
                ("nd_bc", nd_bc_family, 16),
                ("nd_bc", nd_bc_family, 32),
                ("nd_bc", nd_bc_family, 64),
                ("filtering", filtering_family, 32),
                ("filtering", filtering_family, 48),
            ],
            repeat,
        )
        bench_dfa(results, [16, 48, 96], repeat)
        bench_nta(results, [32, 96, 256], repeat)

    forward = [r for r in results if r["group"] == "forward"]
    largest = max(forward, key=lambda r: (r["n"], r["baseline_s"]))
    summary = {
        "mode": "smoke" if args.smoke else "full",
        "repeat": repeat,
        "largest_forward": largest["name"],
        "largest_forward_speedup": largest["speedup"],
        "benchmarks": results,
    }
    args.output.write_text(json.dumps(summary, indent=2) + "\n")

    width = max(len(r["name"]) for r in results)
    for r in results:
        print(
            f"{r['name']:<{width}}  baseline {r['baseline_s'] * 1e3:8.2f} ms"
            f"  kernel {r['kernel_s'] * 1e3:8.2f} ms"
            f"  speedup {r['speedup']:6.2f}x"
        )
    print(f"\nwrote {args.output} "
          f"(largest forward bench: {largest['name']} "
          f"at {largest['speedup']:.2f}x)")

    if args.smoke:
        smoke = next(r for r in forward if r["n"] == SMOKE_FAMILY[1])
        if smoke["speedup"] < SMOKE_MIN_SPEEDUP:
            print(
                f"SMOKE FAILURE: interned kernel slower than the object-state "
                f"baseline on {smoke['name']} "
                f"({smoke['kernel_s'] * 1e3:.2f} ms vs "
                f"{smoke['baseline_s'] * 1e3:.2f} ms; speedup "
                f"{smoke['speedup']:.2f}x < {SMOKE_MIN_SPEEDUP}x)",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
