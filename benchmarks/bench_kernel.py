#!/usr/bin/env python
"""Old-vs-new benchmark for the ``repro.kernel`` interned-state automata
kernel, seeding the repo's perf trajectory.

Times the seed object-state implementations (retained in
:mod:`repro.kernel.reference` and via ``typecheck_forward(use_kernel=False)``)
against the interned kernel on the ``workloads/families.py`` scaling
families plus DFA/NTA micro-workloads, verifies every result, and writes
``BENCH_kernel.json`` at the repo root.

The warm-vs-cold *session* family (compiled ``Session`` batches vs fresh
per-call pipelines, plus the registry-backed one-shot repeat) is measured
alongside and written to ``BENCH_session.json``.

Usage::

    python benchmarks/bench_kernel.py            # full run
    python benchmarks/bench_kernel.py --smoke    # CI guard: fails (exit 1)
                                                 # if the kernel is slower
                                                 # than the baseline on the
                                                 # smoke family, or a warm
                                                 # session fails to beat
                                                 # cold setup
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.api import typecheck  # noqa: E402
from repro.core.forward import typecheck_forward  # noqa: E402
from repro.core.session import Session, clear_registry  # noqa: E402
from repro.kernel import reference  # noqa: E402
from repro.schemas.to_nta import dtd_to_nta  # noqa: E402
from repro.strings.dfa import DFA  # noqa: E402
from repro.tree_automata.emptiness import productive_states  # noqa: E402
from repro.workloads.families import (  # noqa: E402
    filtering_family,
    nd_bc_batch,
    nd_bc_family,
)

SMOKE_FAMILY = ("nd_bc", 16)
# CI guard threshold: the smoke family runs at ~2x locally; requiring only
# ≥ 0.8x keeps the gate meaningful (a real regression drops well below)
# without flaking on noisy shared runners.
SMOKE_MIN_SPEEDUP = 0.8
# Warm sessions must beat cold setup.  Local speedups on the smoke batch are
# ~3x; 1.2x keeps the guard meaningful without flaking on shared runners.
SESSION_SMOKE_FAMILY = (16, 6)
SESSION_SMOKE_MIN_SPEEDUP = 1.2


def best_of(fn, repeat: int) -> float:
    """Best-of-``repeat`` wall time in seconds (min is robust to noise)."""
    times = []
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def counter_dfa(n: int, symbols: int = 3) -> DFA:
    """A complete n-state counter DFA over ``symbols`` letters."""
    sigma = [f"x{j}" for j in range(symbols)]
    transitions = {
        (i, sigma[j]): (i + j + 1) % n for i in range(n) for j in range(symbols)
    }
    return DFA(range(n), sigma, transitions, 0, {0})


def bench_forward(results, sizes, repeat: int) -> None:
    """typecheck_forward: interned kernel vs the seed object fixpoint."""
    for name, family, n in sizes:
        transducer, din, dout, expected = family(n)
        # Warm the DTD-level caches both engines share, and verify both
        # engines give the right answer before timing anything.
        for use_kernel in (True, False):
            result = typecheck_forward(transducer, din, dout, use_kernel=use_kernel)
            assert result.typechecks == expected, (name, n, use_kernel)
        old = best_of(
            lambda: typecheck_forward(transducer, din, dout, use_kernel=False),
            repeat,
        )
        new = best_of(
            lambda: typecheck_forward(transducer, din, dout, use_kernel=True),
            repeat,
        )
        results.append(
            {
                "group": "forward",
                "name": f"{name}({n})",
                "family": name,
                "n": n,
                "baseline_s": old,
                "kernel_s": new,
                "speedup": old / new,
            }
        )


def bench_dfa(results, sizes, repeat: int) -> None:
    """DFA product / inclusion / minimize: kernel vs reference objects."""
    for n in sizes:
        left, right = counter_dfa(n), counter_dfa(n + 1)
        cases = {
            "dfa_product": (
                lambda: reference.dfa_product_object(left, right),
                lambda: left.product(right),
            ),
            "dfa_inclusion": (
                lambda: reference.dfa_contains_object(left, right),
                lambda: left.contains(right),
            ),
            "dfa_minimize": (
                lambda: reference.dfa_minimize_object(left.product(right, "either")),
                lambda: left.product(right, "either").minimize(),
            ),
        }
        for case, (old_fn, new_fn) in cases.items():
            assert old_fn() == new_fn(), case  # benchmarks verify correctness
            old = best_of(old_fn, repeat)
            new = best_of(new_fn, repeat)
            results.append(
                {
                    "group": "dfa",
                    "name": f"{case}({n})",
                    "family": case,
                    "n": n,
                    "baseline_s": old,
                    "kernel_s": new,
                    "speedup": old / new,
                }
            )


def bench_nta(results, sizes, repeat: int) -> None:
    """NTA emptiness fixpoint: interned worklist vs whole-δ rescans.

    Chain DTDs of depth ``n``: the seed fixpoint needs ``n`` rounds, each
    rescanning all of δ, while the worklist re-tests only unlocked rules.
    """
    for n in sizes:
        _, din, _, _ = nd_bc_family(n)
        nta = dtd_to_nta(din)
        old_set, _ = reference.productive_states_object(nta)
        new_set, _ = productive_states(nta)
        assert old_set == new_set
        old = best_of(lambda: reference.productive_states_object(nta), repeat)
        new = best_of(lambda: productive_states(nta), repeat)
        results.append(
            {
                "group": "nta",
                "name": f"nta_productive({n})",
                "family": "nta_productive",
                "n": n,
                "baseline_s": old,
                "kernel_s": new,
                "speedup": old / new,
            }
        )


def bench_session(results, sizes, repeat: int) -> None:
    """Warm session batches vs cold per-call pipelines.

    *Cold* rebuilds the schema pair (fresh DTD objects, as a fresh process
    would) and runs the full pipeline for every transducer; *warm* compiles
    one ``Session`` for the pair — session construction included in the
    timed region — and serves the whole batch from it.  The ``one-shot``
    variant times the unchanged ``typecheck()`` facade on fresh DTD objects
    each call: the in-process registry makes repeats warm transparently.
    """
    for n, k in sizes:
        transducers, _, _, expected = nd_bc_batch(n, k)

        def cold():
            for transducer in transducers:
                _, din, dout, _ = nd_bc_family(n)
                result = typecheck_forward(transducer, din, dout)
                assert result.typechecks == expected

        def warm():
            _, din, dout, _ = nd_bc_family(n)
            session = Session(din, dout)
            for result in session.typecheck_many(transducers, method="forward"):
                assert result.typechecks == expected

        def one_shot_registry():
            clear_registry()
            for transducer in transducers:
                _, din, dout, _ = nd_bc_family(n)
                result = typecheck(transducer, din, dout, method="forward")
                assert result.typechecks == expected

        cold_s = best_of(cold, repeat)
        warm_s = best_of(warm, repeat)
        registry_s = best_of(one_shot_registry, repeat)
        results.append(
            {
                "group": "session",
                "name": f"nd_bc_batch(n={n}, k={k})",
                "family": "nd_bc_batch",
                "n": n,
                "k": k,
                "cold_s": cold_s,
                "warm_s": warm_s,
                "one_shot_registry_s": registry_s,
                "per_call_cold_ms": cold_s / k * 1e3,
                "per_call_warm_ms": warm_s / k * 1e3,
                "speedup": cold_s / warm_s,
                "one_shot_registry_speedup": cold_s / registry_s,
            }
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small sizes; exit 1 if the kernel is slower "
                             "than the baseline on the smoke family or a "
                             "warm session fails to beat cold setup")
    parser.add_argument("--repeat", type=int, default=None,
                        help="timing repetitions (default: 5, smoke: 7)")
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_kernel.json")
    parser.add_argument("--output-session", type=Path,
                        default=REPO_ROOT / "BENCH_session.json")
    args = parser.parse_args(argv)
    repeat = args.repeat or (7 if args.smoke else 5)

    results: list = []
    session_results: list = []
    if args.smoke:
        bench_forward(results, [("nd_bc", nd_bc_family, SMOKE_FAMILY[1])], repeat)
        bench_dfa(results, [16], repeat)
        bench_nta(results, [32], repeat)
        bench_session(session_results, [SESSION_SMOKE_FAMILY], repeat)
    else:
        bench_forward(
            results,
            [
                ("nd_bc", nd_bc_family, 16),
                ("nd_bc", nd_bc_family, 32),
                ("nd_bc", nd_bc_family, 64),
                ("filtering", filtering_family, 32),
                ("filtering", filtering_family, 48),
            ],
            repeat,
        )
        bench_dfa(results, [16, 48, 96], repeat)
        bench_nta(results, [32, 96, 256], repeat)
        bench_session(
            session_results, [(16, 6), (32, 12), (64, 8)], repeat
        )

    forward = [r for r in results if r["group"] == "forward"]
    largest = max(forward, key=lambda r: (r["n"], r["baseline_s"]))
    summary = {
        "mode": "smoke" if args.smoke else "full",
        "repeat": repeat,
        "largest_forward": largest["name"],
        "largest_forward_speedup": largest["speedup"],
        "benchmarks": results,
    }
    args.output.write_text(json.dumps(summary, indent=2) + "\n")

    largest_session = max(session_results, key=lambda r: (r["n"], r["cold_s"]))
    session_summary = {
        "mode": "smoke" if args.smoke else "full",
        "repeat": repeat,
        "largest_batch": largest_session["name"],
        "largest_batch_warm_speedup": largest_session["speedup"],
        "benchmarks": session_results,
    }
    args.output_session.write_text(json.dumps(session_summary, indent=2) + "\n")

    width = max(len(r["name"]) for r in results + session_results)
    for r in results:
        print(
            f"{r['name']:<{width}}  baseline {r['baseline_s'] * 1e3:8.2f} ms"
            f"  kernel {r['kernel_s'] * 1e3:8.2f} ms"
            f"  speedup {r['speedup']:6.2f}x"
        )
    for r in session_results:
        print(
            f"{r['name']:<{width}}  cold     {r['cold_s'] * 1e3:8.2f} ms"
            f"  warm   {r['warm_s'] * 1e3:8.2f} ms"
            f"  speedup {r['speedup']:6.2f}x"
            f"  (one-shot registry {r['one_shot_registry_speedup']:.2f}x)"
        )
    print(f"\nwrote {args.output} "
          f"(largest forward bench: {largest['name']} "
          f"at {largest['speedup']:.2f}x)")
    print(f"wrote {args.output_session} "
          f"(largest batch: {largest_session['name']} warm at "
          f"{largest_session['speedup']:.2f}x over cold)")

    if args.smoke:
        failed = False
        smoke = next(r for r in forward if r["n"] == SMOKE_FAMILY[1])
        if smoke["speedup"] < SMOKE_MIN_SPEEDUP:
            print(
                f"SMOKE FAILURE: interned kernel slower than the object-state "
                f"baseline on {smoke['name']} "
                f"({smoke['kernel_s'] * 1e3:.2f} ms vs "
                f"{smoke['baseline_s'] * 1e3:.2f} ms; speedup "
                f"{smoke['speedup']:.2f}x < {SMOKE_MIN_SPEEDUP}x)",
                file=sys.stderr,
            )
            failed = True
        session_smoke = session_results[0]
        if session_smoke["speedup"] < SESSION_SMOKE_MIN_SPEEDUP:
            print(
                f"SMOKE FAILURE: warm session does not beat cold setup on "
                f"{session_smoke['name']} "
                f"({session_smoke['warm_s'] * 1e3:.2f} ms vs "
                f"{session_smoke['cold_s'] * 1e3:.2f} ms; speedup "
                f"{session_smoke['speedup']:.2f}x < "
                f"{SESSION_SMOKE_MIN_SPEEDUP}x)",
                file=sys.stderr,
            )
            failed = True
        if failed:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
